package obs

import (
	"fmt"
	"strings"
)

// histBuckets is the number of exact buckets: values 1..histBuckets each get
// their own bucket; larger values land in the overflow bucket. Newton and
// corrector iteration counts live comfortably below 16 (the paper's "2–3
// MPNR iterations typical"), so exact small-value buckets beat log scales.
const histBuckets = 16

// Hist is a small-integer histogram (iteration counts). The zero value is
// ready to use. Hist itself is not synchronized; the collector locks around
// shared instances, and the transient engine accumulates into a private one
// and merges once per run.
type Hist struct {
	buckets  [histBuckets + 1]int64 // [0]=value 1 … [15]=value 16, [16]=17+
	count    int64
	sum      int64
	min, max int
}

func (h *Hist) observe(v int, n int64) {
	if n <= 0 {
		return
	}
	idx := v - 1
	if idx < 0 {
		idx = 0
	}
	if idx > histBuckets {
		idx = histBuckets
	}
	h.buckets[idx] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += int64(v) * n
}

// Observe records n occurrences of the value v (local accumulation; see
// Run.Merge for folding into a shared run).
func (h *Hist) Observe(v int, n int64) { h.observe(v, n) }

func (h *Hist) merge(o *Hist) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset zeroes the histogram for reuse.
func (h *Hist) Reset() { *h = Hist{} }

// AddSnapshot folds a snapshot into h exactly (bucket counts, count, sum,
// min/max) — the serving layer aggregates per-job summaries this way without
// losing the overflow bucket's true sum.
func (h *Hist) AddSnapshot(s HistSnapshot) {
	if s.Count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += s.Buckets[i]
	}
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
}

// Snapshot returns an immutable copy of the histogram.
func (h *Hist) Snapshot() HistSnapshot { return h.snapshot() }

func (h *Hist) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	copy(s.Buckets[:], h.buckets[:])
	return s
}

// HistSnapshot is an immutable copy of a histogram.
type HistSnapshot struct {
	// Buckets[i] counts samples of value i+1; the last bucket counts
	// everything above histBuckets.
	Buckets  [histBuckets + 1]int64
	Count    int64
	Sum      int64
	Min, Max int
}

// Mean returns the average observed value (0 for an empty histogram).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Median returns the (lower) median observed value.
func (s HistSnapshot) Median() int {
	if s.Count == 0 {
		return 0
	}
	half := (s.Count + 1) / 2
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= half {
			return i + 1
		}
	}
	return s.Max
}

// String renders the non-empty buckets compactly, e.g.
// "n=39 mean=2.3 [2:12 3:25 4:2]".
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f [", s.Count, s.Mean())
	first := true
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if i == histBuckets {
			fmt.Fprintf(&b, ">%d:%d", histBuckets, n)
		} else {
			fmt.Fprintf(&b, "%d:%d", i+1, n)
		}
	}
	b.WriteByte(']')
	return b.String()
}
