package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RuntimeStats is one runtime self-telemetry sample: scheduler and memory
// pressure indicators that make saturation visible before it turns into
// queue-full 429s.
type RuntimeStats struct {
	Goroutines int    // runtime.NumGoroutine
	HeapBytes  uint64 // live heap (MemStats.HeapAlloc)
	GCPauseNs  int64  // cumulative STW pause (MemStats.PauseTotalNs)
	SchedP99Ns int64  // p99 goroutine scheduling latency since process start
}

// ReadRuntimeStats samples the Go runtime. It allocates (ReadMemStats,
// runtime/metrics buckets) and takes a brief STW, so callers sample on a
// timer — never per-event or per-step.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		GCPauseNs:  int64(ms.PauseTotalNs),
		SchedP99Ns: schedLatencyP99Ns(),
	}
}

// schedLatencyP99Ns reads the runtime's goroutine scheduling-latency
// histogram and returns its 99th percentile in nanoseconds (0 when the
// metric is unavailable or empty).
func schedLatencyP99Ns() int64 {
	sample := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return histQuantileNs(sample[0].Value.Float64Histogram(), 0.99)
}

// histQuantileNs computes a quantile of a runtime/metrics histogram, in
// nanoseconds, by walking the cumulative counts and reporting the upper
// bound of the bucket that crosses the target rank.
func histQuantileNs(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets has len(Counts)+1 boundaries; bucket i spans
			// Buckets[i]..Buckets[i+1]. The last bucket's upper bound is
			// +Inf — fall back to its finite lower edge.
			upper := h.Buckets[i+1]
			if math.IsInf(upper, 1) {
				upper = h.Buckets[i]
			}
			if math.IsInf(upper, -1) {
				return 0
			}
			return int64(upper * 1e9)
		}
	}
	return 0
}

// Runtime emits one runtime self-telemetry sample into the event stream and
// bumps the runtime_samples counter. Nil-safe and free on a disabled run.
func (r *Run) Runtime(st RuntimeStats) {
	if r == nil {
		return
	}
	r.Count(CtrRuntimeSamples, 1)
	r.c.emit(&Event{
		TNs: int64(r.c.since()), Kind: KindRuntime,
		Goroutines: st.Goroutines, HeapBytes: st.HeapBytes,
		GCPauseNs: st.GCPauseNs, SchedP99Ns: st.SchedP99Ns,
	})
}
