package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Sink consumes the structured event stream. Event is called under the
// collector lock (events arrive serialized, in order); Close is called once
// with the final aggregate summary.
type Sink interface {
	Event(e *Event)
	Close(sum *Summary) error
}

// --- JSON lines ---

// JSONLSink streams every event as one JSON object per line (schema v1).
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink writes events to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Event implements Sink.
func (s *JSONLSink) Event(e *Event) {
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
}

// Close implements Sink, reporting any deferred write error.
func (s *JSONLSink) Close(*Summary) error { return s.err }

// --- Chrome trace-event format ---

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, loadable in Perfetto or chrome://tracing. Timestamps are
// microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  uint64  `json:"tid"`
}

// ChromeTraceSink renders finished spans as Chrome trace complete events.
// Concurrent top-level spans (corner sweeps, Monte-Carlo samples) land on
// separate tracks.
type ChromeTraceSink struct {
	w      io.Writer
	events []chromeEvent
}

// NewChromeTraceSink buffers span events and writes the JSON array on Close.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	return &ChromeTraceSink{w: w}
}

// Event implements Sink: span_end events become complete slices.
func (s *ChromeTraceSink) Event(e *Event) {
	if e.Kind != KindSpanEnd {
		return
	}
	s.events = append(s.events, chromeEvent{
		Name: e.Name,
		Cat:  "latchchar",
		Ph:   "X",
		Ts:   float64(e.TNs-e.DurNs) / 1e3,
		Dur:  float64(e.DurNs) / 1e3,
		Pid:  1,
		Tid:  e.Track,
	})
}

// Close writes the buffered trace as a JSON array.
func (s *ChromeTraceSink) Close(*Summary) error {
	// Stable render order: by track, then start time (spans arrive in end
	// order, which interleaves tracks nondeterministically under
	// concurrency).
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].Tid != s.events[j].Tid {
			return s.events[i].Tid < s.events[j].Tid
		}
		return s.events[i].Ts < s.events[j].Ts
	})
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", " ")
	return enc.Encode(s.events)
}

// --- Human text summary ---

// TextSummarySink ignores the event stream and renders the final aggregate:
// per-phase wall-clock, transient counts, Newton/corrector iteration
// histograms and the LU factorization/reuse ratio.
type TextSummarySink struct {
	w io.Writer
}

// NewTextSummarySink renders the run summary to w on Close.
func NewTextSummarySink(w io.Writer) *TextSummarySink {
	return &TextSummarySink{w: w}
}

// Event implements Sink (no-op; the summary is aggregate-only).
func (s *TextSummarySink) Event(*Event) {}

// Close implements Sink.
func (s *TextSummarySink) Close(sum *Summary) error {
	return WriteSummary(s.w, sum)
}

// WriteSummary renders a run summary as human-readable text.
func WriteSummary(w io.Writer, sum *Summary) error {
	if _, err := fmt.Fprintf(w, "— run summary (wall %v) —\n", sum.Wall.Round(time.Microsecond)); err != nil {
		return err
	}
	if len(sum.Phases) > 0 {
		fmt.Fprintf(w, "phases:\n")
		for _, p := range sum.Phases {
			avg := time.Duration(0)
			if p.Count > 0 {
				avg = p.Total / time.Duration(p.Count)
			}
			fmt.Fprintf(w, "  %-14s ×%-6d total %-12v avg %v\n",
				p.Name, p.Count, p.Total.Round(time.Microsecond), avg.Round(time.Microsecond))
		}
	}
	plain := sum.Counters[CtrTransients]
	grad := sum.Counters[CtrTransientsGrad]
	if plain+grad > 0 {
		fmt.Fprintf(w, "transients: %d (%d plain + %d gradient)\n", plain+grad, plain, grad)
	}
	if steps := sum.Counters[CtrSteps]; steps > 0 {
		fmt.Fprintf(w, "integrator: %d steps, %d Newton iterations\n",
			steps, sum.Counters[CtrNewtonIters])
	}
	full := sum.Counters[CtrLUFactor]
	re := sum.Counters[CtrLURefactor]
	if full+re > 0 {
		fmt.Fprintf(w, "LU: %d factorizations (%d full + %d pivot-reusing, %.1f%% reused)\n",
			full+re, full, re, 100*float64(re)/float64(full+re))
	}
	if n := sum.Counters[CtrSensSolves]; n > 0 {
		fmt.Fprintf(w, "sensitivities: %d solves, %d factorizations reused (gradient ≈ free)\n",
			n, sum.Counters[CtrSensFactReused])
	}
	if n := sum.Counters[CtrPoints]; n > 0 {
		fmt.Fprintf(w, "contour points: %d (%d predictor steps rejected)\n",
			n, sum.Counters[CtrStepRejects])
	}
	for _, hs := range sum.Hists {
		fmt.Fprintf(w, "hist %-22s %s\n", hs.Name+":", hs.Hist)
	}
	// Leftover counters not covered above, for forward compatibility.
	known := map[string]bool{
		CtrTransients: true, CtrTransientsGrad: true, CtrSteps: true,
		CtrNewtonIters: true, CtrLUFactor: true, CtrLURefactor: true,
		CtrSensSolves: true, CtrSensFactReused: true, CtrPoints: true,
		CtrStepRejects: true,
	}
	var rest []string
	for name := range sum.Counters {
		if !known[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		fmt.Fprintf(w, "counter %s = %d\n", name, sum.Counters[name])
	}
	return nil
}
