package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Recorder is a flight recorder: a bounded ring buffer over the most recent
// events of a run, attached as an always-on Sink. When the run is healthy it
// costs one struct copy per event (O(1), no per-event allocation after the
// ring fills); when a job fails, times out, or is cancelled, the recorded
// window is dumped with WriteDump as a JSONL post-mortem that
// ValidateDump / `tracecheck -dump` accepts.
//
// Event is invoked under the collector lock (all sinks are), so it never
// blocks and never calls back into the run. Snapshot and WriteDump may be
// called concurrently from the serving layer after the job dies.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // index of the next write
	full    bool  // ring has wrapped at least once
	dropped int64 // events evicted by the wrap
}

// DefaultRecorderCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: enough to hold the tail of a trace (steps,
// correctors, points) without holding a whole surface sweep in memory.
const DefaultRecorderCapacity = 4096

// NewRecorder creates a flight recorder holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Event records e into the ring, evicting the oldest event once full.
func (r *Recorder) Event(e *Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = *e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Close satisfies Sink. The ring stays readable after Close so a dump can be
// taken from a run that already ended.
func (r *Recorder) Close(*Summary) error { return nil }

// Snapshot returns the recorded window in emission order and the number of
// older events the ring evicted to make room.
func (r *Recorder) Snapshot() ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.full {
		out = make([]Event, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.next]...)
	}
	return out, r.dropped
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// DumpMeta identifies a post-mortem dump: which request (Corr) and job it
// belongs to, why it was taken (Reason, e.g. "timeout", "canceled",
// "convergence"), and the error string of the failure.
type DumpMeta struct {
	Corr   string
	Job    string
	Reason string
	Err    string
}

// WriteDump writes the flight-recorder post-mortem as JSON lines: a
// dump_meta header, the recorded event window, and (when errEv is non-nil) a
// trailing structured error event carrying the convergence iterate ring and
// step schedule. The output satisfies ValidateDump.
func (r *Recorder) WriteDump(w io.Writer, meta DumpMeta, errEv *Event) error {
	events, dropped := r.Snapshot()
	enc := json.NewEncoder(w)
	head := Event{
		V: SchemaVersion, Kind: KindDumpMeta,
		Corr: meta.Corr, Job: meta.Job, Reason: meta.Reason,
		Msg: meta.Err, Dropped: dropped,
	}
	if err := enc.Encode(&head); err != nil {
		return fmt.Errorf("obs: writing dump header: %w", err)
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: writing dump event %d: %w", i, err)
		}
	}
	if errEv != nil {
		ev := *errEv
		ev.V = SchemaVersion
		ev.Kind = KindError
		if ev.Corr == "" {
			ev.Corr = meta.Corr
		}
		if err := enc.Encode(&ev); err != nil {
			return fmt.Errorf("obs: writing dump error event: %w", err)
		}
	}
	return nil
}
