package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestChromeTraceGolden drives a fixed span sequence through the Chrome
// trace sink under a fake clock and compares against the checked-in golden
// file. Load testdata/chrome_trace.golden.json in Perfetto or
// chrome://tracing to inspect the expected rendering.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	run := New(WithClock(fakeClock(time.Millisecond)))
	run.AddSink(NewChromeTraceSink(&buf))

	char := run.StartSpan(SpanCharacterize)
	cal := char.StartSpan(SpanCalibrate)
	cal.End()
	trace := char.StartSpan(SpanTrace)
	step := trace.StartSpan(SpanStep)
	corr := step.StartSpan(SpanCorrector)
	sim := corr.StartSpan(SpanTransient)
	sim.End()
	corr.End()
	step.End()
	trace.End()
	char.End()
	// A second top-level span lands on its own track.
	sweep := run.StartSpan(SpanCorner)
	sweep.End()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The output must be valid JSON regardless of golden comparison.
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(parsed) != 7 {
		t.Fatalf("chrome trace has %d events, want 7", len(parsed))
	}
	for _, ev := range parsed {
		if ev["ph"] != "X" {
			t.Fatalf("unexpected phase %v in %v", ev["ph"], ev)
		}
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(buf.Bytes())) {
		t.Errorf("chrome trace drifted from golden file\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
