package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the event schema version stamped on every event (v1,
// documented in DESIGN.md §7). Additive field changes keep the version;
// renaming or retyping a field bumps it.
const SchemaVersion = 1

// Event kinds.
const (
	KindRunBegin  = "run_begin"
	KindSpanBegin = "span_begin"
	KindSpanEnd   = "span_end"
	KindPoint     = "point"
	KindProgress  = "progress"
	KindLog       = "log"
	KindRunEnd    = "run_end"
	// KindRuntime carries a runtime self-telemetry sample (goroutines, heap,
	// GC pauses, scheduler latency) emitted by the runtime sampler.
	KindRuntime = "runtime"
	// KindDumpMeta heads a flight-recorder post-mortem dump: the correlation
	// and job identity, the dump reason and how many events the bounded ring
	// evicted before the failure.
	KindDumpMeta = "dump_meta"
	// KindError carries a structured solver failure in a dump: the failing
	// op, the corrector iterate ring and the predictor step schedule tried.
	KindError = "error"
)

// Event is one record of the structured stream (schema v1). Times are
// nanoseconds since the start of the run.
type Event struct {
	V      int    `json:"v"`
	TNs    int64  `json:"t_ns"`
	Kind   string `json:"ev"`
	Name   string `json:"name,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Track  uint64 `json:"track,omitempty"`
	DurNs  int64  `json:"dur_ns,omitempty"`

	// point / progress payload.
	TauS  float64 `json:"tau_s,omitempty"`
	TauH  float64 `json:"tau_h,omitempty"`
	Iters int     `json:"iters,omitempty"`
	Done  int     `json:"done,omitempty"`
	Total int     `json:"total,omitempty"`
	ETANs int64   `json:"eta_ns,omitempty"`
	Phase string  `json:"phase,omitempty"`

	// log payload.
	Msg string `json:"msg,omitempty"`

	// Corr is the run's correlation ID (WithCorr), stamped on every event so
	// NDJSON stream consumers and post-mortem dumps join to the daemon logs.
	Corr string `json:"corr,omitempty"`

	// runtime payload (KindRuntime).
	Goroutines int    `json:"goroutines,omitempty"`
	HeapBytes  uint64 `json:"heap_bytes,omitempty"`
	GCPauseNs  int64  `json:"gc_pause_ns,omitempty"`
	SchedP99Ns int64  `json:"sched_p99_ns,omitempty"`

	// dump_meta payload (KindDumpMeta).
	Job     string `json:"job,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Dropped int64  `json:"dropped,omitempty"`

	// error payload (KindError): the failing stage, the corrector iterate
	// ring and the predictor step-length schedule at the failure site.
	Op       string    `json:"op,omitempty"`
	Iterates []Iterate `json:"iterates,omitempty"`
	StepLens []float64 `json:"step_lens,omitempty"`

	// run_end payload: final counter values.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Iterate is one corrector iterate of a dumped convergence failure.
type Iterate struct {
	TauS float64 `json:"tau_s"`
	TauH float64 `json:"tau_h"`
	H    float64 `json:"h"`
}

var validKinds = map[string]bool{
	KindRunBegin: true, KindSpanBegin: true, KindSpanEnd: true,
	KindPoint: true, KindProgress: true, KindLog: true, KindRunEnd: true,
	KindRuntime: true, KindDumpMeta: true, KindError: true,
}

// ReadJSONL decodes a JSON-lines event stream.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading events: %w", err)
	}
	return events, nil
}

// Validate checks an event stream against schema v1: version stamps, known
// kinds, monotone timestamps, and span begin/end pairing with resolvable
// parents. It returns the first violation found.
func Validate(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obs: empty event stream")
	}
	open := map[uint64]Event{}  // span id -> begin event
	closed := map[uint64]bool{} // ended spans (still valid parents)
	var lastT int64
	for i, e := range events {
		where := fmt.Sprintf("event %d (%s)", i, e.Kind)
		if e.V != SchemaVersion {
			return fmt.Errorf("obs: %s: schema version %d, want %d", where, e.V, SchemaVersion)
		}
		if !validKinds[e.Kind] {
			return fmt.Errorf("obs: %s: unknown event kind", where)
		}
		if e.TNs < lastT {
			return fmt.Errorf("obs: %s: timestamp %d precedes previous event %d", where, e.TNs, lastT)
		}
		lastT = e.TNs
		switch e.Kind {
		case KindSpanBegin:
			if e.Name == "" || e.Span == 0 {
				return fmt.Errorf("obs: %s: span_begin needs name and span id", where)
			}
			if _, dup := open[e.Span]; dup || closed[e.Span] {
				return fmt.Errorf("obs: %s: duplicate span id %d", where, e.Span)
			}
			if e.Parent != 0 {
				if _, ok := open[e.Parent]; !ok && !closed[e.Parent] {
					return fmt.Errorf("obs: %s: parent span %d never began", where, e.Parent)
				}
			}
			open[e.Span] = e
		case KindSpanEnd:
			begin, ok := open[e.Span]
			if !ok {
				return fmt.Errorf("obs: %s: span_end for span %d without begin", where, e.Span)
			}
			if begin.Name != e.Name {
				return fmt.Errorf("obs: %s: span %d ends as %q, began as %q", where, e.Span, e.Name, begin.Name)
			}
			if e.DurNs < 0 {
				return fmt.Errorf("obs: %s: negative duration", where)
			}
			delete(open, e.Span)
			closed[e.Span] = true
		}
	}
	if len(open) > 0 {
		for id, b := range open {
			return fmt.Errorf("obs: span %d (%s) never ended", id, b.Name)
		}
	}
	return nil
}

// ValidateDump checks a flight-recorder post-mortem dump. A dump is a
// truncated window over a run that died mid-flight, so the strict pairing of
// Validate cannot hold: span_end events whose begins were evicted from the
// ring are fine, and spans open at the end of the dump are exactly what a
// killed job leaves behind. What must still hold: the first event is
// dump_meta, every event carries schema v1 and a known kind, timestamps are
// monotone within the recorded window, and no span id begins twice.
func ValidateDump(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obs: empty dump")
	}
	if events[0].Kind != KindDumpMeta {
		return fmt.Errorf("obs: dump does not start with a %s event (got %s)", KindDumpMeta, events[0].Kind)
	}
	begun := map[uint64]bool{}
	var lastT int64
	for i, e := range events {
		where := fmt.Sprintf("event %d (%s)", i, e.Kind)
		if e.V != SchemaVersion {
			return fmt.Errorf("obs: %s: schema version %d, want %d", where, e.V, SchemaVersion)
		}
		if !validKinds[e.Kind] {
			return fmt.Errorf("obs: %s: unknown event kind", where)
		}
		// dump_meta and error are synthesized at dump time and sit outside
		// the run's clock; only the recorded window is ordered.
		if e.Kind == KindDumpMeta || e.Kind == KindError {
			continue
		}
		if i > 1 && e.TNs < lastT {
			return fmt.Errorf("obs: %s: timestamp %d precedes previous event %d", where, e.TNs, lastT)
		}
		lastT = e.TNs
		switch e.Kind {
		case KindSpanBegin:
			if e.Name == "" || e.Span == 0 {
				return fmt.Errorf("obs: %s: span_begin needs name and span id", where)
			}
			if begun[e.Span] {
				return fmt.Errorf("obs: %s: duplicate span id %d", where, e.Span)
			}
			begun[e.Span] = true
		case KindSpanEnd:
			if e.DurNs < 0 {
				return fmt.Errorf("obs: %s: negative duration", where)
			}
		}
	}
	return nil
}

// SpanNode is one reconstructed span in the tree.
type SpanNode struct {
	ID       uint64
	Parent   uint64
	Name     string
	StartNs  int64
	DurNs    int64
	Children []*SpanNode
}

// SpanTree reconstructs the span forest from an event stream: the returned
// slice holds the top-level spans (parent 0), each with its children in
// begin order. Events must already validate.
func SpanTree(events []Event) ([]*SpanNode, error) {
	nodes := map[uint64]*SpanNode{}
	var roots []*SpanNode
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			n := &SpanNode{ID: e.Span, Parent: e.Parent, Name: e.Name, StartNs: e.TNs}
			nodes[e.Span] = n
			if e.Parent == 0 {
				roots = append(roots, n)
			} else if p := nodes[e.Parent]; p != nil {
				p.Children = append(p.Children, n)
			} else {
				return nil, fmt.Errorf("obs: span %d references unknown parent %d", e.Span, e.Parent)
			}
		case KindSpanEnd:
			if n := nodes[e.Span]; n != nil {
				n.DurNs = e.DurNs
			}
		}
	}
	return roots, nil
}

// Walk visits the node and every descendant depth-first.
func (n *SpanNode) Walk(visit func(*SpanNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}
