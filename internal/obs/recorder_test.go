package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		rec.Event(&Event{V: SchemaVersion, Kind: KindPoint, TNs: int64(i), Iters: i})
	}
	events, dropped := rec.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	for i, e := range events {
		if want := int64(7 + i); e.TNs != want {
			t.Fatalf("event %d has t_ns %d, want %d (oldest-first order)", i, e.TNs, want)
		}
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rec.Len())
	}
}

func TestRecorderPartialRing(t *testing.T) {
	rec := NewRecorder(16)
	rec.Event(&Event{V: SchemaVersion, Kind: KindRunBegin})
	rec.Event(&Event{V: SchemaVersion, Kind: KindPoint, TNs: 5})
	events, dropped := rec.Snapshot()
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("got %d events, %d dropped; want 2, 0", len(events), dropped)
	}
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	rec := NewRecorder(0)
	if got := len(rec.buf); got != DefaultRecorderCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultRecorderCapacity)
	}
}

// TestRecorderDumpValidates drives a real run through a recorder small
// enough to evict the early events — the shape of a killed job — and checks
// the dump round-trips through ReadJSONL and satisfies ValidateDump with the
// correlation ID on every recorded event and the synthesized error ring at
// the tail.
func TestRecorderDumpValidates(t *testing.T) {
	now := time.Unix(0, 0)
	run := New(
		WithClock(func() time.Time { now = now.Add(time.Millisecond); return now }),
		WithCorr("corr-abc123"),
	)
	rec := NewRecorder(8)
	run.AddSink(rec)

	trace := run.StartSpan(SpanTrace)
	for i := 0; i < 12; i++ {
		step := trace.StartSpan(SpanStep)
		step.Point(1e-12*float64(i), 2e-12, i%4+1)
		step.End()
	}
	// The job dies here: trace never ends, run never closes.

	var buf bytes.Buffer
	errEv := &Event{
		Op:  "trace",
		Msg: "corrector diverged at step 12",
		Iterates: []Iterate{
			{TauS: 1.1e-11, TauH: 2.0e-12, H: 1e-12},
			{TauS: 1.2e-11, TauH: 2.1e-12, H: 5e-13},
		},
		StepLens: []float64{1e-12, 5e-13, 2.5e-13},
	}
	if err := rec.WriteDump(&buf, DumpMeta{
		Corr: "corr-abc123", Job: "job-7", Reason: "convergence",
		Err: "corrector diverged at step 12",
	}, errEv); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}

	events, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("dump does not parse as JSONL: %v", err)
	}
	if err := ValidateDump(events); err != nil {
		t.Fatalf("dump fails ValidateDump: %v", err)
	}
	// Strict Validate must reject it (evicted span begins) — that's the
	// reason ValidateDump exists; if this starts passing, the ring was big
	// enough and the test lost its point.
	if err := Validate(events); err == nil {
		t.Fatal("truncated dump unexpectedly passes strict Validate")
	}

	head := events[0]
	if head.Kind != KindDumpMeta || head.Job != "job-7" || head.Reason != "convergence" {
		t.Fatalf("bad dump header: %+v", head)
	}
	if head.Dropped == 0 {
		t.Fatal("header reports no evictions; ring should have wrapped")
	}
	for i, e := range events {
		if e.Corr != "corr-abc123" {
			t.Fatalf("event %d (%s) has corr %q, want corr-abc123", i, e.Kind, e.Corr)
		}
	}
	tail := events[len(events)-1]
	if tail.Kind != KindError || tail.Op != "trace" {
		t.Fatalf("dump tail is %+v, want error event for op trace", tail)
	}
	if len(tail.Iterates) != 2 || len(tail.StepLens) != 3 {
		t.Fatalf("error event lost the iterate ring: %+v", tail)
	}
}

func TestValidateDumpRejects(t *testing.T) {
	meta := Event{V: SchemaVersion, Kind: KindDumpMeta}
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"empty", nil, "empty dump"},
		{"no header", []Event{{V: SchemaVersion, Kind: KindPoint}}, "does not start with"},
		{"bad version", []Event{meta, {V: 99, Kind: KindPoint}}, "schema version"},
		{"unknown kind", []Event{meta, {V: SchemaVersion, Kind: "bogus"}}, "unknown event kind"},
		{"time travel", []Event{meta,
			{V: SchemaVersion, Kind: KindPoint, TNs: 10},
			{V: SchemaVersion, Kind: KindPoint, TNs: 5}}, "precedes"},
		{"dup span begin", []Event{meta,
			{V: SchemaVersion, Kind: KindSpanBegin, Name: SpanStep, Span: 3},
			{V: SchemaVersion, Kind: KindSpanBegin, Name: SpanStep, Span: 3}}, "duplicate span id"},
	}
	for _, tc := range cases {
		err := ValidateDump(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// Orphan span_end and open spans are legal in a dump.
	ok := []Event{meta,
		{V: SchemaVersion, Kind: KindSpanEnd, Name: SpanStep, Span: 99, TNs: 1},
		{V: SchemaVersion, Kind: KindSpanBegin, Name: SpanTrace, Span: 100, TNs: 2},
	}
	if err := ValidateDump(ok); err != nil {
		t.Errorf("truncated-but-well-formed dump rejected: %v", err)
	}
}

func TestRuntimeSampleEmission(t *testing.T) {
	run := New(WithCorr("rt-corr"))
	var got []Event
	cancel := run.Subscribe(func(e Event) {
		if e.Kind == KindRuntime {
			got = append(got, e)
		}
	})
	defer cancel()
	st := ReadRuntimeStats()
	if st.Goroutines <= 0 {
		t.Fatalf("ReadRuntimeStats reports %d goroutines", st.Goroutines)
	}
	if st.HeapBytes == 0 {
		t.Fatal("ReadRuntimeStats reports zero heap")
	}
	run.Runtime(st)
	if len(got) != 1 {
		t.Fatalf("saw %d runtime events, want 1", len(got))
	}
	if got[0].Goroutines != st.Goroutines || got[0].HeapBytes != st.HeapBytes {
		t.Fatalf("runtime event %+v does not match sample %+v", got[0], st)
	}
	if got[0].Corr != "rt-corr" {
		t.Fatalf("runtime event corr = %q, want rt-corr", got[0].Corr)
	}
	if n := run.Counter(CtrRuntimeSamples); n != 1 {
		t.Fatalf("runtime_samples counter = %d, want 1", n)
	}
}
