package obs

import "time"

// Progress is one live progress report. The tracer reports per accepted
// contour point; the surface generator per completed grid row.
type Progress struct {
	// Phase identifies the reporting stage (a span name, e.g. "trace").
	Phase string
	// Done and Total count work items (contour points against the point
	// budget, grid samples against n²). Total may be 0 when unknown.
	Done, Total int
	// TauS, TauH is the most recent solved point (tracer only).
	TauS, TauH float64
	// CorrectorIters is the corrector effort at the latest point.
	CorrectorIters int
	// Elapsed is wall-clock since the run started; ETA extrapolates the
	// remaining work from the average pace so far (0 when unknown).
	Elapsed, ETA time.Duration
}

// Progress reports live progress. Reports are rate-limited to the interval
// configured with WithProgress; a report with Done ≥ Total > 0 always goes
// through so completion is never dropped. Also emits a progress event to the
// sinks at the same cadence.
func (r *Run) Progress(p Progress) {
	if r == nil || r.c.progressFn == nil {
		return
	}
	c := r.c
	now := c.since()
	final := p.Total > 0 && p.Done >= p.Total
	if !final {
		last := c.lastProg.Load()
		if now-time.Duration(last) < c.progressEvery {
			return
		}
		if !c.lastProg.CompareAndSwap(last, int64(now)) {
			return // another goroutine just reported
		}
	} else {
		c.lastProg.Store(int64(now))
	}
	p.Elapsed = now
	if p.ETA == 0 && p.Done > 0 && p.Total > p.Done {
		p.ETA = time.Duration(float64(now) / float64(p.Done) * float64(p.Total-p.Done))
	}
	var span uint64
	if r.span != nil {
		span = r.span.id
	}
	c.emit(&Event{
		TNs: int64(now), Kind: KindProgress,
		Span: span, Phase: p.Phase,
		Done: p.Done, Total: p.Total,
		TauS: p.TauS, TauH: p.TauH, Iters: p.CorrectorIters,
		ETANs: int64(p.ETA),
	})
	c.progressFn(p)
}
