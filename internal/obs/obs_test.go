package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed tick per reading, making event timestamps (and
// therefore golden files) deterministic.
func fakeClock(tick time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * tick)
		n++
		return t
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	var buf bytes.Buffer
	run := New(WithClock(fakeClock(time.Millisecond)))
	run.AddSink(NewJSONLSink(&buf))

	char := run.StartSpan(SpanCharacterize)
	seed := char.StartSpan(SpanSeed)
	tr := seed.StartSpan(SpanTransient)
	tr.End()
	seed.End()
	trace := char.StartSpan(SpanTrace)
	for i := 0; i < 2; i++ {
		step := trace.StartSpan(SpanStep)
		corr := step.StartSpan(SpanCorrector)
		sim := corr.StartSpan(SpanTransient)
		sim.End()
		corr.End()
		step.End()
	}
	trace.End()
	char.End()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if err := Validate(events); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if events[0].Kind != KindRunBegin || events[len(events)-1].Kind != KindRunEnd {
		t.Fatalf("stream not bracketed by run_begin/run_end: %s … %s",
			events[0].Kind, events[len(events)-1].Kind)
	}

	roots, err := SpanTree(events)
	if err != nil {
		t.Fatalf("SpanTree: %v", err)
	}
	if len(roots) != 1 || roots[0].Name != SpanCharacterize {
		t.Fatalf("want one %q root, got %+v", SpanCharacterize, roots)
	}
	// characterize > [seed > transient, trace > 2×(step > corrector > transient)]
	var path []string
	roots[0].Walk(func(n *SpanNode) { path = append(path, n.Name) })
	want := []string{
		SpanCharacterize,
		SpanSeed, SpanTransient,
		SpanTrace,
		SpanStep, SpanCorrector, SpanTransient,
		SpanStep, SpanCorrector, SpanTransient,
	}
	if strings.Join(path, ">") != strings.Join(want, ">") {
		t.Fatalf("span tree walk\n got %v\nwant %v", path, want)
	}
	// Every span must have a strictly positive duration under the fake
	// clock (each reading advances 1 ms).
	roots[0].Walk(func(n *SpanNode) {
		if n.DurNs <= 0 {
			t.Errorf("span %s (id %d) has non-positive duration %d", n.Name, n.ID, n.DurNs)
		}
	})
}

func TestSummaryAggregation(t *testing.T) {
	run := New(WithClock(fakeClock(time.Millisecond)))
	for i := 0; i < 3; i++ {
		sp := run.StartSpan(SpanTransient)
		sp.Count(CtrTransients, 1)
		sp.End()
	}
	run.Count(CtrLUFactor, 2)
	run.Count(CtrLURefactor, 18)
	run.Observe(HistCorrectorIters, 2)
	run.Observe(HistCorrectorIters, 3)
	run.Observe(HistCorrectorIters, 2)

	sum := run.Summary()
	if got := sum.Phase(SpanTransient); got.Count != 3 || got.Total <= 0 {
		t.Fatalf("transient phase stat = %+v", got)
	}
	if sum.Counters[CtrTransients] != 3 {
		t.Fatalf("transients counter = %d, want 3", sum.Counters[CtrTransients])
	}
	if len(sum.Hists) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(sum.Hists))
	}
	h := sum.Hists[0].Hist
	if h.Count != 3 || h.Median() != 2 || h.Max != 3 {
		t.Fatalf("corrector histogram = %+v", h)
	}

	var text bytes.Buffer
	if err := WriteSummary(&text, &sum); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	for _, want := range []string{"transients: 3", "LU: 20 factorizations", "90.0% reused", HistCorrectorIters} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, text.String())
		}
	}
}

func TestNilRunIsSafeAndFree(t *testing.T) {
	var run *Run
	if run.Enabled() {
		t.Fatal("nil run reports Enabled")
	}
	// The full hot-path surface on a nil run must not allocate.
	allocs := testing.AllocsPerRun(200, func() {
		sp := run.StartSpan(SpanTransient)
		sp.Count(CtrSteps, 1)
		sp.Observe(HistNewtonIters, 3)
		sp.Point(1e-12, 2e-12, 2)
		sp.Progress(Progress{Done: 1, Total: 2})
		sp.End()
		var h Hist
		h.Observe(3, 1)
		sp.Merge(HistNewtonIters, &h)
		// Flight-recorder-era surface: with the recorder compiled in but
		// the run disabled, correlation and runtime sampling stay free.
		if run.CorrID() != "" {
			panic("nil run has a correlation ID")
		}
		run.Runtime(RuntimeStats{Goroutines: 1})
	})
	if allocs != 0 {
		t.Fatalf("nil-run hot path allocates %v times per op, want 0", allocs)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if run.Summary().Counters != nil {
		t.Fatal("nil run summary should be zero value")
	}
}

func TestCounterConcurrency(t *testing.T) {
	run := New()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := run.StartSpan(SpanCorner)
			for i := 0; i < each; i++ {
				sp.Count(CtrTransients, 1)
				sp.Observe(HistCorrectorIters, i%5+1)
			}
			sp.End()
		}()
	}
	wg.Wait()
	if got := run.Counter(CtrTransients); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	sum := run.Summary()
	if got := sum.Phase(SpanCorner).Count; got != workers {
		t.Fatalf("corner span count = %d, want %d", got, workers)
	}
	if got := sum.Hists[0].Hist.Count; got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestProgressCadence(t *testing.T) {
	var reports []Progress
	clock := fakeClock(10 * time.Millisecond) // each reading advances 10 ms
	run := New(
		WithClock(clock),
		WithProgress(func(p Progress) { reports = append(reports, p) }, 50*time.Millisecond),
	)
	// 20 reports, clock advancing 10 ms per call: the limiter must thin
	// them to roughly one per 50 ms, and the final (Done == Total) report
	// must always pass.
	for i := 1; i <= 20; i++ {
		run.Progress(Progress{Phase: SpanTrace, Done: i, Total: 20})
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports delivered")
	}
	if len(reports) >= 20 {
		t.Fatalf("rate limiter passed all %d reports", len(reports))
	}
	last := reports[len(reports)-1]
	if last.Done != 20 {
		t.Fatalf("final report Done = %d, want 20 (completion must never be dropped)", last.Done)
	}
	for _, p := range reports[:len(reports)-1] {
		if p.ETA <= 0 {
			t.Errorf("mid-run report %+v lacks an ETA", p)
		}
	}
	// Reports are rate-limited pairwise at least the interval apart.
	for i := 1; i < len(reports)-1; i++ {
		if d := reports[i].Elapsed - reports[i-1].Elapsed; d < 50*time.Millisecond {
			t.Errorf("reports %d and %d only %v apart", i-1, i, d)
		}
	}
}

func TestValidateCatchesCorruptStreams(t *testing.T) {
	mk := func(mut func([]Event) []Event) error {
		run := New(WithClock(fakeClock(time.Millisecond)))
		var buf bytes.Buffer
		run.AddSink(NewJSONLSink(&buf))
		sp := run.StartSpan(SpanTrace)
		sp.End()
		run.Close()
		events, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("ReadJSONL: %v", err)
		}
		return Validate(mut(events))
	}
	if err := mk(func(e []Event) []Event { return e }); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	cases := map[string]func([]Event) []Event{
		"bad version":    func(e []Event) []Event { e[1].V = 99; return e },
		"unknown kind":   func(e []Event) []Event { e[1].Kind = "zorp"; return e },
		"unended span":   func(e []Event) []Event { return e[:2] },
		"orphan end":     func(e []Event) []Event { return append(e[:1], e[2:]...) },
		"time goes back": func(e []Event) []Event { e[2].TNs = -5; return e },
	}
	for name, mut := range cases {
		if err := mk(mut); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestHistOverflowAndMerge(t *testing.T) {
	var a, b Hist
	a.Observe(1, 3)
	a.Observe(40, 1) // overflow bucket
	b.Observe(2, 2)
	a.merge(&b)
	s := a.snapshot()
	if s.Count != 6 || s.Min != 1 || s.Max != 40 {
		t.Fatalf("merged snapshot = %+v", s)
	}
	if s.Buckets[histBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[histBuckets])
	}
	if !strings.Contains(s.String(), ">16:1") {
		t.Fatalf("overflow not rendered: %s", s.String())
	}
}

func TestSubscribeReceivesAndCancels(t *testing.T) {
	run := New(WithClock(fakeClock(time.Millisecond)))
	var mu sync.Mutex
	var got []Event
	cancel := run.Subscribe(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})

	sp := run.StartSpan(SpanCharacterize)
	sp.End()
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("subscriber saw %d events, want span begin+end", n)
	}
	if got[0].Kind != KindSpanBegin || got[1].Kind != KindSpanEnd {
		t.Fatalf("kinds = %s, %s", got[0].Kind, got[1].Kind)
	}

	// After cancel, further events are not delivered.
	cancel()
	sp2 := run.StartSpan(SpanTrace)
	sp2.End()
	mu.Lock()
	after := len(got)
	mu.Unlock()
	if after != n {
		t.Errorf("canceled subscriber still receives events: %d -> %d", n, after)
	}

	// A second subscriber sees the run_end emitted by Close.
	var last Event
	run.Subscribe(func(e Event) { last = e })
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if last.Kind != KindRunEnd {
		t.Errorf("final event kind = %q, want run_end", last.Kind)
	}
}

func TestSubscribeNilRun(t *testing.T) {
	var run *Run
	cancel := run.Subscribe(func(Event) { t.Error("nil run delivered an event") })
	cancel() // must not panic
	run.StartSpan(SpanTrace).End()
}
