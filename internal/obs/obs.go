// Package obs is the runtime observability layer of the characterization
// engine: hierarchical spans, monotonic counters, iteration histograms and a
// structured event stream with pluggable sinks (JSON lines, Chrome
// trace-event format, human text summary), plus rate-limited live progress
// reporting.
//
// The central type is *Run, a context-like handle threaded through the
// solver stack. A nil *Run disables everything: every method is nil-safe and
// allocation-free, so the hot paths (the transient inner loop, the
// per-transient bookkeeping in stf) pay only a pointer test when
// observability is off. Deriving a child span returns a new *Run sharing the
// same underlying collector, so each layer sees its own span as the parent
// of whatever it calls next:
//
//	run := obs.New()
//	run.AddSink(obs.NewJSONLSink(w))
//	char := run.StartSpan(obs.SpanCharacterize)
//	...
//	char.End()
//	run.Close()
//
// Counters are safe for concurrent use (corner sweeps share one Run across
// goroutines); span begin/end events are serialized by the collector.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span names used by the characterization stack (the span taxonomy of
// DESIGN.md §7). Sinks and tests match on these.
const (
	SpanCharacterize = "characterize"
	SpanCalibrate    = "calibrate"
	SpanSeed         = "seed"
	SpanTrace        = "trace"
	SpanStep         = "step"
	SpanCorrector    = "corrector"
	SpanTransient    = "transient"
	SpanResample     = "resample"
	SpanSurface      = "surface"
	SpanIndependent  = "independent"
	SpanCorner       = "corner"
	SpanMCSample     = "mc-sample"
	SpanMCNominal    = "mc-nominal"
	SpanBatch        = "batch"
	SpanBatchJob     = "batch-job"
	SpanJob          = "job"
)

// Counter names.
const (
	CtrTransients     = "transients"
	CtrTransientsGrad = "transients_grad"
	CtrSteps          = "integrator_steps"
	CtrNewtonIters    = "newton_iters"
	CtrLUFactor       = "lu_factorizations"
	CtrLURefactor     = "lu_refactorizations"
	CtrSensSolves     = "sens_solves"
	CtrSensFactReused = "sens_factorizations_reused"
	CtrPoints         = "contour_points"
	CtrStepRejects    = "step_rejects"
	CtrWarmSeeds      = "warm_seeds"
	CtrCalReused      = "calibrations_reused"
	CtrChordIters     = "chord_iters"
	CtrJacobianReuses = "jacobian_reuses"
	CtrDeviceBypasses = "device_bypasses"
	CtrRuntimeSamples = "runtime_samples"
	// Block-transient kernel (internal/transient.BlockEngine).
	CtrBlockRuns         = "block_runs"
	CtrBlockPeelOffs     = "block_peel_offs"
	CtrBlockSharedSteps  = "block_shared_steps"
	CtrBlockDonorReplays = "block_donor_replays"
	// Variance-aware Monte-Carlo (statistical contours): nominal-seeded
	// probe solves, transients avoided vs naive re-characterization, and
	// samples folded into the control-variate delta estimator.
	CtrMCWarmSeeds = "mc_warm_seeds"
	CtrMCSimsSaved = "mc_sims_saved"
	CtrMCCVApplied = "mc_cv_applied"
	// Cluster coordinator (internal/serve/cluster). Workers never emit
	// these; the coordinator folds them into its own exposition under the
	// same vocabulary so fleet dashboards sum one stable counter set.
	CtrClusterForwards        = "cluster_forwards"
	CtrClusterForwardRetries  = "cluster_forward_retries"
	CtrClusterForwardFailures = "cluster_forward_failures"
	CtrClusterRehashes        = "cluster_rehashes"
	CtrClusterStreamEvents    = "cluster_stream_events"
)

// Histogram names.
const (
	HistNewtonIters    = "newton_iters_per_step"
	HistCorrectorIters = "corrector_iters"
	HistChordIters     = "chord_iters_per_step"
	// HistBlockSize records the lane count of each block-transient run.
	HistBlockSize = "block_size"
)

// Option configures a Run at construction.
type Option func(*collector)

// WithClock substitutes the time source (tests use a fake clock so golden
// files are deterministic). now must be monotonically non-decreasing.
func WithClock(now func() time.Time) Option {
	return func(c *collector) { c.clock = now }
}

// WithProgress installs a live progress callback invoked at most once per
// interval (plus always on completion, Done ≥ Total). A non-positive
// interval defaults to 250 ms.
func WithProgress(fn func(Progress), interval time.Duration) Option {
	return func(c *collector) {
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		c.progressFn = fn
		c.progressEvery = interval
	}
}

// WithProfileLabels enables runtime/pprof goroutine labels around the
// transient and LU phases, so standard Go CPU profiles attribute time to
// characterization phases.
func WithProfileLabels() Option {
	return func(c *collector) { c.profileLabels = true }
}

// WithCorr sets the run's correlation ID. Every emitted event is stamped
// with it, so NDJSON streams, flight-recorder dumps and daemon log lines of
// one request all join on the same identifier.
func WithCorr(id string) Option {
	return func(c *collector) { c.corr = id }
}

// Run is one observed characterization run, or a span within it. The zero
// value is not usable; construct with New. A nil *Run is valid everywhere
// and disables all collection.
type Run struct {
	c    *collector
	span *spanInfo // nil for the root handle
}

type spanInfo struct {
	id     uint64
	parent uint64
	track  uint64
	name   string
	start  time.Duration // since run start
}

type phaseAgg struct {
	count int64
	total time.Duration
}

type collector struct {
	clock         func() time.Time
	start         time.Time
	nextID        atomic.Uint64
	profileLabels bool
	corr          string

	progressFn    func(Progress)
	progressEvery time.Duration
	lastProg      atomic.Int64 // ns since start of last report

	cmu      sync.RWMutex
	counters map[string]*atomic.Int64

	mu        sync.Mutex
	closed    bool
	sinks     []Sink
	nextSubID uint64
	subs      map[uint64]func(Event)
	phases    map[string]*phaseAgg
	hists     map[string]*Hist
}

// New creates an enabled observability run.
func New(opts ...Option) *Run {
	c := &collector{
		clock:    time.Now,
		counters: make(map[string]*atomic.Int64),
		phases:   make(map[string]*phaseAgg),
		hists:    make(map[string]*Hist),
	}
	for _, o := range opts {
		o(c)
	}
	c.start = c.clock()
	r := &Run{c: c}
	return r
}

// Enabled reports whether the run collects anything. Callers use it to skip
// argument marshalling (e.g. Logf formatting) on disabled runs.
func (r *Run) Enabled() bool { return r != nil }

// ProfileLabelsEnabled reports whether pprof phase labels were requested.
func (r *Run) ProfileLabelsEnabled() bool {
	return r != nil && r.c.profileLabels
}

// CorrID returns the run's correlation ID ("" when unset or the run is nil).
func (r *Run) CorrID() string {
	if r == nil {
		return ""
	}
	return r.c.corr
}

// AddSink attaches a sink. Sinks added after events have been emitted only
// see subsequent events.
func (r *Run) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if len(r.c.sinks) == 0 {
		// First sink sees the run_begin marker.
		s.Event(&Event{V: SchemaVersion, Kind: KindRunBegin, Corr: r.c.corr})
	}
	r.c.sinks = append(r.c.sinks, s)
}

func (c *collector) since() time.Duration { return c.clock().Sub(c.start) }

// emit serializes an event to every sink and subscriber. The caller fills
// everything but V.
func (c *collector) emit(e *Event) {
	e.V = SchemaVersion
	e.Corr = c.corr
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	for _, s := range c.sinks {
		s.Event(e)
	}
	for _, fn := range c.subs {
		fn(*e)
	}
}

// Subscribe registers fn to receive a copy of every subsequent event, and
// returns a cancel function that unregisters it. Unlike AddSink, a
// subscription can be dropped while the run is live — the hook the serving
// layer's NDJSON event streaming attaches and detaches per HTTP client.
// fn is invoked under the collector lock and must not block or call back
// into the run; hand the event off to a buffered channel and drop on
// overflow instead of stalling the solvers.
func (r *Run) Subscribe(fn func(Event)) (cancel func()) {
	if r == nil || fn == nil {
		return func() {}
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSubID++
	id := c.nextSubID
	if c.subs == nil {
		c.subs = make(map[uint64]func(Event))
	}
	c.subs[id] = fn
	return func() {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
	}
}

// StartSpan opens a child span and returns a derived handle whose subsequent
// spans nest under it. End the returned handle exactly once.
func (r *Run) StartSpan(name string) *Run {
	if r == nil {
		return nil
	}
	id := r.c.nextID.Add(1)
	sp := &spanInfo{id: id, name: name, start: r.c.since()}
	if r.span != nil {
		sp.parent = r.span.id
		sp.track = r.span.track
	} else {
		// Top-level spans each get their own track so concurrent corners
		// render as parallel rows in Chrome trace viewers.
		sp.track = id
	}
	child := &Run{c: r.c, span: sp}
	r.c.emit(&Event{
		TNs: int64(sp.start), Kind: KindSpanBegin,
		Name: name, Span: id, Parent: sp.parent, Track: sp.track,
	})
	return child
}

// End closes the span this handle represents. A root handle (from New) or a
// nil Run ignores End.
func (r *Run) End() {
	if r == nil || r.span == nil {
		return
	}
	sp := r.span
	now := r.c.since()
	dur := now - sp.start
	r.c.mu.Lock()
	agg := r.c.phases[sp.name]
	if agg == nil {
		agg = &phaseAgg{}
		r.c.phases[sp.name] = agg
	}
	agg.count++
	agg.total += dur
	r.c.mu.Unlock()
	r.c.emit(&Event{
		TNs: int64(now), Kind: KindSpanEnd,
		Name: sp.name, Span: sp.id, Parent: sp.parent, Track: sp.track,
		DurNs: int64(dur),
	})
}

// Count adds delta to the named monotonic counter. Safe for concurrent use.
func (r *Run) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.c.counter(name).Add(delta)
}

func (c *collector) counter(name string) *atomic.Int64 {
	c.cmu.RLock()
	ctr := c.counters[name]
	c.cmu.RUnlock()
	if ctr != nil {
		return ctr
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if ctr = c.counters[name]; ctr == nil {
		ctr = &atomic.Int64{}
		c.counters[name] = ctr
	}
	return ctr
}

// Counter returns the current value of a counter (0 if never incremented).
func (r *Run) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.c.cmu.RLock()
	defer r.c.cmu.RUnlock()
	if ctr := r.c.counters[name]; ctr != nil {
		return ctr.Load()
	}
	return 0
}

// Observe records one sample in the named iteration histogram.
func (r *Run) Observe(name string, v int) {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	h := r.c.hists[name]
	if h == nil {
		h = &Hist{}
		r.c.hists[name] = h
	}
	h.observe(v, 1)
}

// Merge folds a locally accumulated histogram into the named histogram in
// one locked operation — the transient engine uses this so the inner loop
// never takes the collector lock.
func (r *Run) Merge(name string, h *Hist) {
	if r == nil || h == nil || h.count == 0 {
		return
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	dst := r.c.hists[name]
	if dst == nil {
		dst = &Hist{}
		r.c.hists[name] = dst
	}
	dst.merge(h)
}

// Point emits one solved contour point to the event stream.
func (r *Run) Point(tauS, tauH float64, iters int) {
	if r == nil {
		return
	}
	var span, parent uint64
	if r.span != nil {
		span, parent = r.span.id, r.span.parent
	}
	r.c.emit(&Event{
		TNs: int64(r.c.since()), Kind: KindPoint,
		Span: span, Parent: parent,
		TauS: tauS, TauH: tauH, Iters: iters,
	})
}

// Logf emits a free-form log event. Guard call sites on Enabled when the
// arguments are expensive to build.
func (r *Run) Logf(format string, args ...any) {
	if r == nil {
		return
	}
	var span uint64
	if r.span != nil {
		span = r.span.id
	}
	r.c.emit(&Event{
		TNs: int64(r.c.since()), Kind: KindLog,
		Span: span, Msg: fmt.Sprintf(format, args...),
	})
}

// Elapsed returns the wall-clock time since the run started.
func (r *Run) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return r.c.since()
}

// Summary snapshots the aggregated run state: per-phase wall-clock,
// counters and histograms.
func (r *Run) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	c := r.c
	s := Summary{
		Wall:     c.since(),
		Counters: map[string]int64{},
	}
	c.cmu.RLock()
	for name, ctr := range c.counters {
		s.Counters[name] = ctr.Load()
	}
	c.cmu.RUnlock()
	c.mu.Lock()
	for name, agg := range c.phases {
		s.Phases = append(s.Phases, PhaseStat{Name: name, Count: agg.count, Total: agg.total})
	}
	for name, h := range c.hists {
		s.Hists = append(s.Hists, HistStat{Name: name, Hist: h.snapshot()})
	}
	c.mu.Unlock()
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Total > s.Phases[j].Total })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Close emits the run_end event (with the final counter values) and closes
// every sink. Further events are dropped. Close is idempotent.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	c := r.c
	sum := r.Summary()
	c.emit(&Event{
		TNs: int64(c.since()), Kind: KindRunEnd,
		Counters: sum.Counters,
	})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	sinks := c.sinks
	c.mu.Unlock()
	var firstErr error
	for _, s := range sinks {
		if err := s.Close(&sum); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PhaseStat is the aggregated wall-clock of one span name.
type PhaseStat struct {
	Name  string
	Count int64
	Total time.Duration
}

// HistStat pairs a histogram name with its snapshot.
type HistStat struct {
	Name string
	Hist HistSnapshot
}

// Summary is an aggregate view of a run.
type Summary struct {
	Wall     time.Duration
	Phases   []PhaseStat
	Counters map[string]int64
	Hists    []HistStat
}

// Phase returns the stats for one span name (zero value if absent).
func (s Summary) Phase(name string) PhaseStat {
	for _, p := range s.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStat{}
}
