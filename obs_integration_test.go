package latchchar

// Acceptance tests for the observability layer at the library surface:
// the JSONL event stream of a real characterization must reconstruct the
// full span tree, the text summary's transient count must agree with the
// Result's own accounting, attaching a run must not perturb the numerics,
// the fine-grained wall-clock attribution must stay gated off when nothing
// asks for it, and shared counters must stay consistent under the
// concurrency of SweepCorners.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"latchchar/internal/obs"
)

// smallOpts keeps the instrumented runs cheap: one trace direction, few
// points.
func smallOpts(run *obs.Run) Options {
	return Options{
		Points:         5,
		BothDirections: false,
		Obs:            run,
		Eval:           EvalConfig{Obs: run},
	}
}

func TestObsEventStreamReconstructsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulations in -short mode")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, text bytes.Buffer
	run := NewObsRun()
	run.AddSink(NewJSONLSink(&jsonl))
	run.AddSink(NewTextSummarySink(&text))
	ev, err := NewEvaluator(cell, EvalConfig{Obs: run})
	if err != nil {
		t.Fatal(err)
	}
	calSteps := ev.Work.Steps // integrator work of the calibration transient
	res, err := CharacterizeWithEvaluator(ev, smallOpts(run))
	if err != nil {
		t.Fatal(err)
	}
	sum := run.Summary()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadObsJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if err := ValidateObsEvents(events); err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	tree, err := ObsSpanTree(events)
	if err != nil {
		t.Fatalf("SpanTree: %v", err)
	}

	// The top level holds the calibration (run during evaluator
	// construction) and the characterization.
	var char *ObsSpanNode
	names := map[string]int{}
	for _, n := range tree {
		names[n.Name]++
		if n.Name == obs.SpanCharacterize {
			char = n
		}
	}
	if names[obs.SpanCalibrate] != 1 || names[obs.SpanCharacterize] != 1 {
		t.Fatalf("top-level spans = %v, want one calibrate and one characterize", names)
	}
	// characterize > seed and characterize > trace > step > corrector >
	// transient, matching the span taxonomy.
	kids := map[string]*ObsSpanNode{}
	for _, c := range char.Children {
		kids[c.Name] = c
	}
	if kids[obs.SpanSeed] == nil || kids[obs.SpanTrace] == nil {
		t.Fatalf("characterize children = %v, want seed and trace", keysOf(kids))
	}
	foundLeaf := false
	kids[obs.SpanTrace].Walk(func(n *ObsSpanNode) {
		if n.Name == obs.SpanTransient {
			foundLeaf = true
		}
	})
	if !foundLeaf {
		t.Fatal("no transient span nested under the trace")
	}
	stepCount := 0
	for _, c := range kids[obs.SpanTrace].Children {
		if c.Name == obs.SpanStep {
			stepCount++
			if len(c.Children) == 0 || c.Children[0].Name != obs.SpanCorrector {
				t.Fatalf("step span without corrector child: %+v", c)
			}
		}
	}
	// The seed point is corrected directly under the trace span; every
	// further contour point gets its own step span.
	if want := len(res.Contour.Points) - 1; stepCount != want {
		t.Fatalf("step spans = %d, want %d (points %d)", stepCount, want, len(res.Contour.Points))
	}

	// Counter agreement: telemetry sees every transient the Result counts,
	// plus the single calibration transient.
	total := sum.Counters[obs.CtrTransients] + sum.Counters[obs.CtrTransientsGrad]
	if int(total) != res.TotalSims()+1 {
		t.Fatalf("counted %d transients, Result reports %d (+1 calibration)", total, res.TotalSims())
	}
	wantLine := fmt.Sprintf("transients: %d (%d plain + %d gradient)",
		total, res.PlainSims+1, res.GradSims)
	if !strings.Contains(text.String(), wantLine) {
		t.Fatalf("text summary missing %q:\n%s", wantLine, text.String())
	}
	// The integrator stats must also agree with the Result's accounting
	// (the counters additionally see the calibration transient's steps).
	if got, want := sum.Counters[obs.CtrSteps], int64(res.Stats.Steps+calSteps); got != want {
		t.Fatalf("counted %d integrator steps, Result+calibration report %d", got, want)
	}
}

func keysOf(m map[string]*ObsSpanNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestObsAttachmentDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulations in -short mode")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Characterize(cell, smallOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	run := NewObsRun()
	traced, err := Characterize(cell, smallOpts(run))
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if len(plain.Contour.Points) != len(traced.Contour.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(plain.Contour.Points), len(traced.Contour.Points))
	}
	for i := range plain.Contour.Points {
		a, b := plain.Contour.Points[i], traced.Contour.Points[i]
		if a.TauS != b.TauS || a.TauH != b.TauH {
			t.Fatalf("point %d differs with obs attached: (%g, %g) vs (%g, %g)",
				i, a.TauS, a.TauH, b.TauS, b.TauH)
		}
	}
	if plain.TotalSims() != traced.TotalSims() {
		t.Fatalf("simulation counts differ: %d vs %d", plain.TotalSims(), traced.TotalSims())
	}
}

func TestObsTimingGatedOffByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulations in -short mode")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	// Disabled observability: coarse wall-clock only, no fine-grained
	// attribution (its time.Now calls stay off the hot path).
	res, err := Characterize(cell, smallOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Wall <= 0 {
		t.Fatal("Stats.Wall not measured")
	}
	if res.Stats.LU != 0 || res.Stats.DeviceEval != 0 || res.Stats.Sens != 0 {
		t.Fatalf("fine-grained timings measured without observability: LU=%v dev=%v sens=%v",
			res.Stats.LU, res.Stats.DeviceEval, res.Stats.Sens)
	}
	// Enabled observability turns the attribution on.
	run := NewObsRun()
	res, err = Characterize(cell, smallOpts(run))
	run.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LU <= 0 || res.Stats.DeviceEval <= 0 {
		t.Fatalf("fine-grained timings missing with observability: LU=%v dev=%v",
			res.Stats.LU, res.Stats.DeviceEval)
	}
}

func TestObsProgressDeliversFinalReport(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulations in -short mode")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var reports []ObsProgress
	run := NewObsRun(WithObsProgress(func(p ObsProgress) {
		mu.Lock()
		reports = append(reports, p)
		mu.Unlock()
	}, time.Nanosecond))
	if _, err := Characterize(cell, smallOpts(run)); err != nil {
		t.Fatal(err)
	}
	run.Close()
	if len(reports) == 0 {
		t.Fatal("no progress reports delivered")
	}
	last := reports[len(reports)-1]
	if last.Phase != obs.SpanTrace {
		t.Fatalf("last progress phase = %q, want %q", last.Phase, obs.SpanTrace)
	}
	for _, p := range reports {
		if p.Done < 1 || p.Done > p.Total {
			t.Fatalf("progress out of range: %+v", p)
		}
		if p.TauS <= 0 || p.TauH <= 0 {
			t.Fatalf("progress without a contour point: %+v", p)
		}
	}
}

func TestSweepCornersSharedObsCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulations in -short mode")
	}
	mk := func(p Process) *Cell { return TSPCCell(p, DefaultTiming()) }
	corners := StandardCorners()[:3]
	run := NewObsRun()
	opts := smallOpts(run)
	results := SweepCorners(mk, DefaultProcess(), corners, opts)
	sum := run.Summary()
	run.Close()
	wantPoints := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("corner %s: %v", r.Corner, r.Err)
		}
		wantPoints += len(r.Result.Contour.Points)
	}
	if got := sum.Counters[obs.CtrPoints]; int(got) != wantPoints {
		t.Fatalf("counted %d contour points across corners, results hold %d", got, wantPoints)
	}
	if got := sum.Phase(obs.SpanCorner).Count; int(got) != len(corners) {
		t.Fatalf("corner spans = %d, want %d", got, len(corners))
	}
	if got := sum.Phase(obs.SpanCharacterize).Count; int(got) != len(corners) {
		t.Fatalf("characterize spans = %d, want %d", got, len(corners))
	}
}
