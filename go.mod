module latchchar

go 1.22
