package latchchar

import (
	"math"
	"strings"
	"testing"
)

func TestCellByNameAll(t *testing.T) {
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := CellByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := cell.Build(); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
	}
	if _, err := CellByName("zzz"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCellConstructors(t *testing.T) {
	p, tm := DefaultProcess(), DefaultTiming()
	for _, cell := range []*Cell{
		TSPCCell(p, tm),
		C2MOSCell(p, tm, 0.3e-9),
		C2MOSCell(p, tm, 0), // default delay
		TGateCell(p, tm),
	} {
		if _, err := cell.Build(); err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
	}
}

func TestCharacterizeRejectsBrokenCell(t *testing.T) {
	bad := &Cell{Name: "broken", Build: func() (*Instance, error) {
		return nil, errFake{}
	}}
	if _, err := Characterize(bad, Options{}); err == nil {
		t.Error("broken cell accepted")
	}
	if _, err := BruteForce(bad, SurfaceOptions{N: 3}); err == nil {
		t.Error("broken cell accepted by BruteForce")
	}
	if _, err := NewEvaluator(bad, EvalConfig{}); err == nil {
		t.Error("broken cell accepted by NewEvaluator")
	}
}

func TestResultTotalSims(t *testing.T) {
	r := &Result{PlainSims: 3, GradSims: 7}
	if r.TotalSims() != 10 {
		t.Errorf("TotalSims = %d", r.TotalSims())
	}
}

func TestCompareContoursErrors(t *testing.T) {
	empty := &Contour{}
	if _, _, err := CompareContours(empty, nil); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestParseNetlistString(t *testing.T) {
	d, err := ParseNetlistString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNetlist(strings.NewReader("garbage")); err == nil {
		t.Error("garbage deck accepted")
	}
}

func TestTangentReexport(t *testing.T) {
	ts, th, err := Tangent(0, 1)
	if err != nil || ts != -1 || th != 0 {
		t.Errorf("Tangent: %v %v %v", ts, th, err)
	}
}

func TestCharacterizeDefaultBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	// With a tightened MaxSetupSkew, the default bounds shrink accordingly
	// and every traced point stays inside them.
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterize(cell, Options{
		Points:         30,
		BothDirections: true,
		Eval:           EvalConfig{MaxSetupSkew: 0.6e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Contour.Points {
		if p.TauS > 0.6e-9 || p.TauH > 0.6e-9 {
			t.Errorf("point %d outside default bounds: (%v, %v)", i, p.TauS, p.TauH)
		}
	}
}

func TestBruteForceDomainDefaultsAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("surface generation")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := BruteForce(cell, SurfaceOptions{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims != 49 {
		t.Errorf("Sims = %d", res.Sims)
	}
	if len(res.Surface.S) != 7 || len(res.Surface.H) != 7 {
		t.Error("surface shape wrong")
	}
	if res.Surface.S[0] != 10e-12 || math.Abs(res.Surface.S[6]-0.8e-9) > 1e-18 {
		t.Errorf("default domain: [%v, %v]", res.Surface.S[0], res.Surface.S[6])
	}
	// The h samples must straddle zero somewhere (the contour crosses the
	// default domain).
	neg, pos := false, false
	for i := range res.Surface.V {
		for _, v := range res.Surface.V[i] {
			if v < 0 {
				neg = true
			}
			if v > 0 {
				pos = true
			}
		}
	}
	if !neg || !pos {
		t.Error("surface does not straddle the contour")
	}
}

func TestMethodReexports(t *testing.T) {
	if BE.String() != "be" || TRAP.String() != "trap" {
		t.Error("method re-exports wrong")
	}
}

func TestVetBuiltinCellsTopologyClean(t *testing.T) {
	topo := VetOptions{Enable: []string{"floating-node", "no-ground-path", "single-terminal"}}
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := CellByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Vet(cell, VetSpec{}, topo)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diagnostics) != 0 {
			t.Errorf("%s: unexpected topology diagnostics: %v", name, rep.Diagnostics)
		}
	}
}

// The vet topology checks must flag a deck whose load capacitor dangles
// behind a typo'd node (the workload the removed Lint adapter covered; its
// callers migrated to Vet per DESIGN.md §8).
func TestVetFlagsBrokenDeck(t *testing.T) {
	d, err := ParseNetlistString(`
.model nch nmos VT0=0.43 KP=115u
Vdd vdd 0 DC 2.5
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
* "qq" is a typo for "q": leaves q's load dangling behind a capacitor
Cload qq 0 10f
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Vet(d.Cell("typo"), VetSpec{}, VetOptions{
		Enable: []string{"floating-node", "no-ground-path", "single-terminal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, diag := range rep.Diagnostics {
		if strings.Contains(diag.String(), "qq") {
			found = true
		}
	}
	if !found {
		t.Errorf("typo node not flagged: %v", rep.Diagnostics)
	}
}
