package latchchar

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"latchchar/internal/obs"
)

// tspcCornerJobs builds the acceptance workload: one TSPC characterization
// job per standard corner.
func tspcCornerJobs(points int) []Job {
	tm := DefaultTiming()
	jobs := make([]Job, 0, 4)
	for _, c := range StandardCorners() {
		jobs = append(jobs, Job{
			Name: c.Name,
			Cell: TSPCCell(c.Apply(DefaultProcess()), tm),
			Opts: Options{Points: points},
		})
	}
	return jobs
}

// TestBatchWarmStartFewerSims is the tentpole acceptance check: a
// warm-started 4-corner TSPC sweep must spend measurably fewer transients
// than four independent characterizations, because the nominal contour's
// widest-basin point replaces each follower's ~8-transient bracketing
// search with one MPNR correction.
func TestBatchWarmStartFewerSims(t *testing.T) {
	if testing.Short() {
		t.Skip("eight characterizations")
	}
	const points = 10

	coldSims := 0
	for _, job := range tspcCornerJobs(points) {
		res, err := Characterize(job.Cell, job.Opts)
		if err != nil {
			t.Fatalf("cold %s: %v", job.Name, err)
		}
		coldSims += res.TotalSims()
	}

	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	run := obs.New()
	jobs := tspcCornerJobs(points)
	for i := range jobs {
		jobs[i].Opts.Obs = run
	}
	results := eng.CharacterizeBatch(context.Background(), jobs)
	sum := run.Summary()
	run.Close()

	warmSims, warmStarted := 0, 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %s: %v", r.Name, r.Err)
		}
		if len(r.Result.Contour.Points) < 5 {
			t.Errorf("batch %s: only %d contour points", r.Name, len(r.Result.Contour.Points))
		}
		warmSims += r.Result.TotalSims()
		if r.WarmStarted {
			warmStarted++
		}
	}
	if results[0].WarmStarted {
		t.Error("group leader claims a warm start")
	}
	if warmStarted == 0 {
		t.Fatal("no corner warm-started from the nominal contour")
	}
	if got := int(sum.Counters[obs.CtrWarmSeeds]); got != warmStarted {
		t.Errorf("warm_seeds counter %d, but %d results warm-started", got, warmStarted)
	}
	if warmSims >= coldSims {
		t.Errorf("warm-started batch spent %d transients, cold baseline %d — no saving",
			warmSims, coldSims)
	}
	t.Logf("batch %d transients vs %d cold (%d/%d corners warm-started)",
		warmSims, coldSims, warmStarted, len(results)-1)
}

// TestBatchCalibrationReuse: identical jobs share one calibration transient
// through the engine LRU.
func TestBatchCalibrationReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("two characterizations")
	}
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cell := TSPCCell(DefaultProcess(), DefaultTiming())
	jobs := []Job{
		{Name: "a", Cell: cell, Opts: Options{Points: 5}},
		{Name: "b", Cell: cell, Opts: Options{Points: 5}},
	}
	results := eng.CharacterizeBatch(context.Background(), jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	if results[0].CalibrationReused {
		t.Error("first job cannot reuse a calibration")
	}
	if !results[1].CalibrationReused {
		t.Error("second identical job did not reuse the cached calibration")
	}
	if hits, _ := eng.CacheStats(); hits < 1 {
		t.Errorf("cache hits = %d", hits)
	}
	if results[0].Result.Calibration != results[1].Result.Calibration {
		t.Error("reused calibration differs from the measured one")
	}
}

// cancelAfterGrads wraps a Problem and cancels the context after a fixed
// number of gradient evaluations — a deterministic mid-trace interruption.
type cancelAfterGrads struct {
	Problem
	after  int32
	count  atomic.Int32
	cancel context.CancelFunc
}

func (c *cancelAfterGrads) EvalGrad(tauS, tauH float64) (h, dhdS, dhdH float64, err error) {
	if c.count.Add(1) == c.after {
		c.cancel()
	}
	return c.Problem.EvalGrad(tauS, tauH)
}

// TestCancellationMidTracePartialContour: canceling the context mid-trace
// must stop promptly and hand back the partial contour with a structured
// *CanceledError wrapping both ErrCanceled and the context cause.
func TestCancellationMidTracePartialContour(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-scale transients")
	}
	ev, err := NewEvaluator(TSPCCell(DefaultProcess(), DefaultTiming()), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := FindSeed(ev, SeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The seed correction plus the first few contour points cost a handful
	// of gradient evaluations; canceling after 8 lands mid-trace.
	p := &cancelAfterGrads{Problem: ev, after: 8, cancel: cancel}
	ct, err := TraceContourCtx(ctx, p, seed.TauS, seed.TauH, TraceOptions{
		Step: 5e-12, MaxPoints: 40,
		Bounds: Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9},
	})
	if err == nil {
		t.Fatal("canceled trace returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error does not wrap ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("no *CanceledError in chain: %v", err)
	}
	if ct == nil {
		t.Fatal("canceled trace dropped the partial contour")
	}
	if len(ct.Points) == 0 || len(ct.Points) >= 40 {
		t.Fatalf("partial contour has %d points, want 0 < n < 40", len(ct.Points))
	}
	// Cancellation must take effect within about one corrector round: the
	// tracer may finish the in-flight gradient evaluation but not start
	// another full point.
	if extra := p.count.Load() - p.after; extra > 3 {
		t.Errorf("%d gradient evaluations after cancellation", extra)
	}
}

// TestCharacterizeCtxCanceledUpFront: an already-canceled context fails fast
// in the seed search without burning the transient budget.
func TestCharacterizeCtxCanceledUpFront(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an evaluator (one calibration transient)")
	}
	ev, err := NewEvaluator(TSPCCell(DefaultProcess(), DefaultTiming()), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := ev.PlainEvals + ev.GradEvals
	_, err = CharacterizeWithEvaluatorCtx(ctx, ev, Options{Points: 10})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if spent := ev.PlainEvals + ev.GradEvals - before; spent > 1 {
		t.Errorf("canceled run still spent %d transients", spent)
	}
}

// TestEngineMixedLoadRace drives one engine from concurrent corner, batch
// and Monte-Carlo callers — the shared-pool interleaving the race detector
// watches (run with go test -race).
func TestEngineMixedLoadRace(t *testing.T) {
	if testing.Short() {
		t.Skip("many concurrent characterizations")
	}
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	corners := StandardCorners()[:2]
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		rs := eng.SweepCorners(ctx, mk, DefaultProcess(), corners, Options{Points: 5})
		if err := rs.Err(); err != nil {
			t.Errorf("corners: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		for _, s := range eng.MonteCarlo(ctx, mk, DefaultProcess(), MCOptions{
			Samples: 2, Seed: 11, Characterize: Options{Points: 5},
		}) {
			if s.Err != nil {
				t.Errorf("mc sample %d: %v", s.Index, s.Err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		rs := eng.CharacterizeBatch(ctx, []Job{
			{Name: "x", Cell: mk(DefaultProcess()), Opts: Options{Points: 5}},
			{Name: "y", Cell: mk(DefaultProcess()), Opts: Options{Points: 5}},
		})
		for _, r := range rs {
			if r.Err != nil {
				t.Errorf("batch %s: %v", r.Name, r.Err)
			}
		}
	}()
	wg.Wait()
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		field string
	}{
		{"negative points", Options{Points: -1}.Validate(), "Points"},
		{"resample one", Options{Resample: 1}.Validate(), "Resample"},
		{"degrade one", Options{Eval: EvalConfig{Degrade: 1}}.Validate(), "Eval.Degrade"},
		{"inverted bounds", Options{Bounds: Rect{MinS: 2, MaxS: 1, MinH: 1, MaxH: 2}}.Validate(), "Bounds"},
		{"fine above coarse", Options{Eval: EvalConfig{CoarseStep: 1e-12, FineStep: 2e-12}}.Validate(), "Eval.FineStep"},
		{"surface n one", SurfaceOptions{N: 1}.Validate(), "N"},
		{"surface negative block", SurfaceOptions{Block: -1}.Validate(), "Block"},
		{"negative block", Options{Block: -1}.Validate(), "Block"},
		{"mc negative samples", MCOptions{Samples: -1}.Validate(), "Samples"},
		{"mc negative parallelism", MCOptions{Parallelism: -2}.Validate(), "Parallelism"},
		{"engine negative parallelism", EngineOptions{Parallelism: -1}.Validate(), "Parallelism"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(c.err, ErrInvalidOptions) {
			t.Errorf("%s: does not wrap ErrInvalidOptions: %v", c.name, c.err)
		}
		var oe *OptionError
		if !errors.As(c.err, &oe) {
			t.Errorf("%s: no *OptionError: %v", c.name, c.err)
		} else if oe.Field != c.field {
			t.Errorf("%s: field %q, want %q", c.name, oe.Field, c.field)
		}
	}
	// Zero values select defaults and must stay valid.
	for name, err := range map[string]error{
		"Options":        Options{}.Validate(),
		"SurfaceOptions": SurfaceOptions{}.Validate(),
		"MCOptions":      MCOptions{}.Validate(),
		"EngineOptions":  EngineOptions{}.Validate(),
	} {
		if err != nil {
			t.Errorf("zero %s rejected: %v", name, err)
		}
	}
	// The deprecated MaxStep < 0 idiom (disable clamping) must survive v2.
	if err := (Options{MPNR: MPNROptions{MaxStep: -1}}).Validate(); err != nil {
		t.Errorf("MPNR.MaxStep < 0 rejected: %v", err)
	}
}

func TestCharacterizeBatchRejectsBadJobs(t *testing.T) {
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rs := eng.CharacterizeBatch(context.Background(), []Job{
		{Name: "nil-cell"},
		{Name: "bad-opts", Cell: TSPCCell(DefaultProcess(), DefaultTiming()), Opts: Options{Points: -3}},
	})
	for i, r := range rs {
		if !errors.Is(r.Err, ErrInvalidOptions) {
			t.Errorf("job %d: want ErrInvalidOptions, got %v", i, r.Err)
		}
	}
}

func TestCornerResultsErr(t *testing.T) {
	ok := CornerResults{{Corner: "tt"}, {Corner: "ff"}}
	if err := ok.Err(); err != nil {
		t.Fatalf("clean sweep reports %v", err)
	}
	bad := CornerResults{
		{Corner: "tt"},
		{Corner: "ss", Err: errors.New("trace diverged")},
		{Corner: "lv", Err: errors.New("no seed bracket")},
	}
	err := bad.Err()
	if err == nil {
		t.Fatal("failed corners not aggregated")
	}
	for _, want := range []string{"corner ss", "trace diverged", "corner lv", "no seed bracket"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate error misses %q: %v", want, err)
		}
	}
}

// TestDefaultEngineSingleton: the process-wide engine is a write-once global
// behind sync.Once; concurrent first calls must all observe the same
// instance (the -race audit for defaultEngine).
func TestDefaultEngineSingleton(t *testing.T) {
	const goroutines = 16
	engines := make([]*Engine, goroutines)
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engines[i] = DefaultEngine()
		}()
	}
	wg.Wait()
	if engines[0] == nil {
		t.Fatal("DefaultEngine returned nil")
	}
	for i, e := range engines {
		if e != engines[0] {
			t.Fatalf("goroutine %d saw a different engine instance", i)
		}
	}
}
