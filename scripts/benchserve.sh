#!/bin/sh
# benchserve.sh — regenerate BENCH_serve.json: the serving-layer scaling
# curve (throughput + latency percentiles vs worker count).
#
# Methodology: each worker runs latchchard in mock-job mode (-mock-job,
# default 25ms synthetic service time), so the measurement isolates the
# serving layer — queueing, coalescing, consistent-hash forwarding, stream
# proxying — from solver arithmetic. On a single-CPU host real
# characterizations would serialize on the ALU and no serving topology could
# show scaling; a fixed per-job service time makes the worker count the only
# variable. For each N in WORKER_COUNTS the script boots N workers plus a
# coordinator, pushes a closed-loop hot-cell mix through cmd/latchload, and
# upserts the report into BENCH_serve.json keyed by (label, workers).
#
# Usage: scripts/benchserve.sh            # from the repo root, or `make benchserve`
#   WORKER_COUNTS="1 2 4" DURATION=5s CLIENTS=12 MOCK_JOB=25ms scripts/benchserve.sh
set -eu

GO=${GO:-go}
# Defaults are tuned for a small (single-CPU) host: a 100ms service time
# keeps the op rate low enough that per-op serving CPU (JSON, sha256,
# proxying) stays negligible next to service time, and 64 hot shapes spread
# far enough over the ring that per-worker load balances statistically.
# Shorter MOCK_JOB values measure rate-proportional serving overhead instead
# of topology scaling and flatten the curve.
WORKER_COUNTS=${WORKER_COUNTS:-"1 2 4"}
DURATION=${DURATION:-5s}
CLIENTS=${CLIENTS:-24}
MOCK_JOB=${MOCK_JOB:-100ms}
HOT_CELLS=${HOT_CELLS:-64}
BATCH_SIZE=${BATCH_SIZE:-8}
MIX=${MIX:-"hot=0.8,cold=0.2"}
OUT=${OUT:-BENCH_serve.json}
NOTE="mock-job service time ${MOCK_JOB}; closed-loop ${CLIENTS} clients, ${MIX} mix over ${HOT_CELLS} hot cells, hot requests no_cache (each op pays service time on its ring owner, still coalescing concurrent duplicates); measures serving-layer scaling (queueing, forwarding, coalescing), not solver speed"

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/latchchard"
LOAD="$WORKDIR/latchload"
PIDS=""

cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "benchserve: building latchchard and latchload" >&2
$GO build -o "$BIN" ./cmd/latchchard
$GO build -o "$LOAD" ./cmd/latchload

# wait_addr FILE — block until a daemon writes its listen address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ $i -gt 300 ] && { echo "benchserve: daemon never wrote $1" >&2; exit 1; }
        sleep 0.05
    done
    cat "$1"
}

for n in $WORKER_COUNTS; do
    echo "benchserve: workers=$n" >&2
    PIDS=""
    workers=""
    w=0
    while [ $w -lt "$n" ]; do
        w=$((w + 1))
        af="$WORKDIR/w$n.$w.addr"
        rm -f "$af"
        "$BIN" -addr 127.0.0.1:0 -addrfile "$af" -mock-job "$MOCK_JOB" -log-level off &
        PIDS="$PIDS $!"
        addr=$(wait_addr "$af")
        workers="${workers:+$workers,}$addr"
    done

    caf="$WORKDIR/c$n.addr"
    rm -f "$caf"
    "$BIN" -mode coordinator -addr 127.0.0.1:0 -addrfile "$caf" \
        -workers "$workers" -health-interval 250ms -log-level off &
    PIDS="$PIDS $!"
    coord=$(wait_addr "$caf")

    # A short unrecorded warmup settles health polls and connection pools.
    "$LOAD" -target "http://$coord" -duration 1s -clients "$CLIENTS" \
        -mix "$MIX" -hot-cells "$HOT_CELLS" -batch-size "$BATCH_SIZE" -hot-no-cache >/dev/null

    "$LOAD" -target "http://$coord" -duration "$DURATION" -clients "$CLIENTS" \
        -mix "$MIX" -hot-cells "$HOT_CELLS" -batch-size "$BATCH_SIZE" -hot-no-cache \
        -label hot-mix -workers "$n" -bench-out "$OUT" -bench-note "$NOTE"

    # shellcheck disable=SC2086
    kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    PIDS=""
done

echo "benchserve: wrote $OUT" >&2
