package latchchar

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidOptions is the sentinel every options-validation failure wraps;
// test with errors.Is. The structured *OptionError carries which field was
// rejected and why.
var ErrInvalidOptions = errors.New("latchchar: invalid options")

// OptionError reports one rejected configuration field. Zero values never
// trigger it — they keep their documented defaulting behavior — but
// negative counts, non-finite floats and contradictory ranges are rejected
// up front instead of silently snapping to defaults deep in a solver.
type OptionError struct {
	// Field names the rejected field, dotted for nested options
	// (e.g. "Eval.Degrade").
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

// Error renders a one-line report.
func (e *OptionError) Error() string {
	return fmt.Sprintf("latchchar: invalid option %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *OptionError) Unwrap() error { return ErrInvalidOptions }

func optErr(field string, value any, reason string) error {
	return &OptionError{Field: field, Value: value, Reason: reason}
}

// checkFinite rejects NaN and ±Inf.
func checkFinite(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return optErr(field, v, "must be finite")
	}
	return nil
}

// checkNonNeg rejects negative and non-finite values; zero means "default".
func checkNonNeg(field string, v float64) error {
	if err := checkFinite(field, v); err != nil {
		return err
	}
	if v < 0 {
		return optErr(field, v, "must be ≥ 0 (0 selects the default)")
	}
	return nil
}

// validateEval checks an EvalConfig under the given field prefix.
func validateEval(prefix string, c EvalConfig) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CoarseStep", c.CoarseStep},
		{"FineStep", c.FineStep},
		{"MaxSetupSkew", c.MaxSetupSkew},
		{"FineMargin", c.FineMargin},
		{"CalSkew", c.CalSkew},
		{"PostWindow", c.PostWindow},
	} {
		if err := checkNonNeg(prefix+"."+f.name, f.v); err != nil {
			return err
		}
	}
	if err := checkNonNeg(prefix+".Degrade", c.Degrade); err != nil {
		return err
	}
	if c.Degrade >= 1 {
		return optErr(prefix+".Degrade", c.Degrade, "must be a fraction below 1 (e.g. 0.10)")
	}
	if c.CoarseStep > 0 && c.FineStep > 0 && c.FineStep > c.CoarseStep {
		return optErr(prefix+".FineStep", c.FineStep, "must not exceed CoarseStep")
	}
	if c.MaxNewtonIter < 0 {
		return optErr(prefix+".MaxNewtonIter", c.MaxNewtonIter, "must be ≥ 0 (0 selects the default)")
	}
	if err := checkNonNeg(prefix+".ChordContraction", c.ChordContraction); err != nil {
		return err
	}
	if c.ChordContraction >= 1 {
		return optErr(prefix+".ChordContraction", c.ChordContraction,
			"must be a contraction rate below 1 (e.g. 0.5); ≥ 1 would accept non-contracting chord iterations")
	}
	if c.ChordMaxAge < 0 {
		return optErr(prefix+".ChordMaxAge", c.ChordMaxAge, "must be ≥ 0 (0 selects the default)")
	}
	return checkNonNeg(prefix+".BypassVTol", c.BypassVTol)
}

// validateRect checks a bounds rectangle; the zero Rect is the documented
// "use the default domain" request and always passes.
func validateRect(field string, r Rect) error {
	if (r == Rect{}) {
		return nil
	}
	for _, v := range []float64{r.MinS, r.MaxS, r.MinH, r.MaxH} {
		if err := checkFinite(field, v); err != nil {
			return err
		}
	}
	if r.MaxS <= r.MinS || r.MaxH <= r.MinH {
		return optErr(field, r, "needs MaxS > MinS and MaxH > MinH")
	}
	return nil
}

// Validate checks the characterization options, returning a typed
// *OptionError (wrapping ErrInvalidOptions) for the first rejected field.
// Zero values are always valid — they select the documented defaults.
func (o Options) Validate() error {
	if o.Points < 0 {
		return optErr("Points", o.Points, "must be ≥ 0 (0 selects the default)")
	}
	if err := checkNonNeg("Step", o.Step); err != nil {
		return err
	}
	if o.Resample < 0 || o.Resample == 1 {
		return optErr("Resample", o.Resample, "must be 0 (off) or ≥ 2 points")
	}
	if o.Block < 0 {
		return optErr("Block", o.Block, "must be ≥ 0 (0 or 1 keeps the scalar predictor)")
	}
	if err := validateRect("Bounds", o.Bounds); err != nil {
		return err
	}
	if err := validateEval("Eval", o.Eval); err != nil {
		return err
	}
	s := o.Seed
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Seed.TauHLarge", s.TauHLarge},
		{"Seed.Lo", s.Lo},
		{"Seed.Hi", s.Hi},
		{"Seed.NarrowTo", s.NarrowTo},
	} {
		if err := checkNonNeg(f.name, f.v); err != nil {
			return err
		}
	}
	if s.MaxExpand < 0 {
		return optErr("Seed.MaxExpand", s.MaxExpand, "must be ≥ 0 (0 selects the default)")
	}
	if s.Lo > 0 && s.Hi > 0 && s.Hi <= s.Lo {
		return optErr("Seed.Hi", s.Hi, "must exceed Seed.Lo")
	}
	m := o.MPNR
	if m.MaxIter < 0 {
		return optErr("MPNR.MaxIter", m.MaxIter, "must be ≥ 0 (0 selects the default)")
	}
	if err := checkNonNeg("MPNR.HTol", m.HTol); err != nil {
		return err
	}
	if err := checkNonNeg("MPNR.TauTol", m.TauTol); err != nil {
		return err
	}
	// MPNR.MaxStep < 0 is meaningful (disables step clamping); only reject
	// non-finite values.
	if err := checkFinite("MPNR.MaxStep", m.MaxStep); err != nil {
		return err
	}
	return nil
}

// Validate checks the surface-generation options; see Options.Validate.
func (o SurfaceOptions) Validate() error {
	if o.N < 0 || o.N == 1 {
		return optErr("N", o.N, "must be 0 (default) or ≥ 2 grid points per axis")
	}
	if o.Parallelism < 0 {
		return optErr("Parallelism", o.Parallelism, "must be ≥ 0 (0 selects the default)")
	}
	if o.Block < 0 {
		return optErr("Block", o.Block, "must be ≥ 0 (0 or 1 keeps scalar grid evaluation)")
	}
	if err := validateRect("Domain", o.Domain); err != nil {
		return err
	}
	return validateEval("Eval", o.Eval)
}

// Validate checks the Monte-Carlo options; see Options.Validate.
func (o MCOptions) Validate() error {
	if o.Samples < 0 {
		return optErr("Samples", o.Samples, "must be ≥ 0 (0 selects the default)")
	}
	switch o.Sampler {
	case "", SamplerIID, SamplerLHS, SamplerSobol:
	default:
		return optErr("Sampler", o.Sampler, `must be "iid", "lhs" or "sobol" ("" selects iid)`)
	}
	if err := checkNonNeg("SigmaVT", o.SigmaVT); err != nil {
		return err
	}
	if err := checkNonNeg("SigmaKP", o.SigmaKP); err != nil {
		return err
	}
	if err := checkNonNeg("SigmaLevel", o.SigmaLevel); err != nil {
		return err
	}
	if o.Probes < 0 || o.Probes == 1 {
		return optErr("Probes", o.Probes, "must be 0 (default) or ≥ 2 probe points")
	}
	if o.Parallelism < 0 {
		return optErr("Parallelism", o.Parallelism, "must be ≥ 0 (0 selects the default)")
	}
	return o.Characterize.Validate()
}

// Validate checks the engine options; see Options.Validate. A negative
// CacheSize is valid and disables the calibration cache.
func (o EngineOptions) Validate() error {
	if o.Parallelism < 0 {
		return optErr("Parallelism", o.Parallelism, "must be ≥ 0 (0 selects GOMAXPROCS)")
	}
	return nil
}
