package latchchar

import (
	"context"
	"errors"
	"fmt"

	"latchchar/internal/obs"
)

// Corner is one process/voltage condition for characterization. The paper's
// motivating workload is exactly this: "setup/hold times need to be
// characterized for every register/cell of every standard cell library ...
// for all process-voltage-temperature (PVT) corners".
type Corner struct {
	// Name labels the corner (e.g. "tt", "ff", "ss").
	Name string
	// Apply derives the corner's process parameters from the nominal ones.
	Apply func(Process) Process
}

// StandardCorners returns a conventional fast/slow/low-voltage corner set
// around the nominal process: FF (fast devices), SS (slow devices) and LV
// (10% supply droop).
func StandardCorners() []Corner {
	scaleModels := func(p Process, kp, vt float64) Process {
		p.NMOS.KP *= kp
		p.PMOS.KP *= kp
		p.NMOS.VT0 *= vt
		p.PMOS.VT0 *= vt
		return p
	}
	return []Corner{
		{Name: "tt", Apply: func(p Process) Process { return p }},
		{Name: "ff", Apply: func(p Process) Process { return scaleModels(p, 1.2, 0.92) }},
		{Name: "ss", Apply: func(p Process) Process { return scaleModels(p, 0.85, 1.08) }},
		{Name: "lv", Apply: func(p Process) Process { p.VDD *= 0.9; return p }},
	}
}

// CornerResult pairs a corner with its characterization outcome.
type CornerResult struct {
	Corner string
	Result *Result
	Err    error
}

// CornerResults is the ordered outcome of a corner sweep.
type CornerResults []CornerResult

// Err aggregates every failed corner into one error (errors.Join), each
// annotated with its corner name, or nil when every corner succeeded.
// Callers that previously had to loop over the slice to notice failures can
// now gate on a single value.
func (rs CornerResults) Err() error {
	var errs []error
	for _, r := range rs {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("corner %s: %w", r.Corner, r.Err))
		}
	}
	return errors.Join(errs...)
}

// SweepCorners is SweepCornersCtx with context.Background().
func SweepCorners(mk func(Process) *Cell, nominal Process, corners []Corner, opts Options) CornerResults {
	return SweepCornersCtx(context.Background(), mk, nominal, corners, opts)
}

// SweepCornersCtx characterizes one register type across process corners on
// the shared DefaultEngine (one independent circuit per corner). mk builds
// the cell for a given process — e.g. a closure over TSPCCell with fixed
// timing — and results are returned in corner order. Corner jobs draw from
// the engine's bounded pool instead of spawning one goroutine per corner,
// the first corner's traced contour warm-starts the rest (one MPNR
// correction replaces each bracketing search), and cancellation stops
// in-flight traces mid-transient with partial contours in the results.
func SweepCornersCtx(ctx context.Context, mk func(Process) *Cell, nominal Process, corners []Corner, opts Options) CornerResults {
	return DefaultEngine().SweepCorners(ctx, mk, nominal, corners, opts)
}

// SweepCorners runs the corner sweep on this engine; see SweepCornersCtx.
func (e *Engine) SweepCorners(ctx context.Context, mk func(Process) *Cell, nominal Process, corners []Corner, opts Options) CornerResults {
	jobs := make([]Job, len(corners))
	pre := make([]error, len(corners))
	for i, c := range corners {
		if c.Apply == nil {
			pre[i] = fmt.Errorf("latchchar: corner %q has no Apply", c.Name)
			continue
		}
		jobs[i] = Job{Name: c.Name, Cell: mk(c.Apply(nominal)), Opts: opts}
	}
	res := e.characterizeBatch(ctx, jobs, batchConfig{span: obs.SpanCorner, phase: obs.SpanCorner})
	out := make(CornerResults, len(corners))
	for i := range corners {
		out[i] = CornerResult{Corner: corners[i].Name, Result: res[i].Result, Err: res[i].Err}
		if pre[i] != nil {
			out[i].Err = pre[i]
		}
	}
	return out
}
