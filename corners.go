package latchchar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"latchchar/internal/obs"
)

// Corner is one process/voltage condition for characterization. The paper's
// motivating workload is exactly this: "setup/hold times need to be
// characterized for every register/cell of every standard cell library ...
// for all process-voltage-temperature (PVT) corners".
type Corner struct {
	// Name labels the corner (e.g. "tt", "ff", "ss").
	Name string
	// Apply derives the corner's process parameters from the nominal ones.
	Apply func(Process) Process
}

// StandardCorners returns a conventional fast/slow/low-voltage corner set
// around the nominal process: FF (fast devices), SS (slow devices) and LV
// (10% supply droop).
func StandardCorners() []Corner {
	scaleModels := func(p Process, kp, vt float64) Process {
		p.NMOS.KP *= kp
		p.PMOS.KP *= kp
		p.NMOS.VT0 *= vt
		p.PMOS.VT0 *= vt
		return p
	}
	return []Corner{
		{Name: "tt", Apply: func(p Process) Process { return p }},
		{Name: "ff", Apply: func(p Process) Process { return scaleModels(p, 1.2, 0.92) }},
		{Name: "ss", Apply: func(p Process) Process { return scaleModels(p, 0.85, 1.08) }},
		{Name: "lv", Apply: func(p Process) Process { p.VDD *= 0.9; return p }},
	}
}

// CornerResult pairs a corner with its characterization outcome.
type CornerResult struct {
	Corner string
	Result *Result
	Err    error
}

// SweepCorners characterizes one register type across process corners
// concurrently (one independent circuit per corner). mk builds the cell for
// a given process — e.g. a closure over TSPCCell with fixed timing. Results
// are returned in corner order.
func SweepCorners(mk func(Process) *Cell, nominal Process, corners []Corner, opts Options) []CornerResult {
	out := make([]CornerResult, len(corners))
	var done atomic.Int64
	var wg sync.WaitGroup
	for i, c := range corners {
		wg.Add(1)
		go func(i int, c Corner) {
			defer wg.Done()
			out[i].Corner = c.Name
			if c.Apply == nil {
				out[i].Err = fmt.Errorf("latchchar: corner %q has no Apply", c.Name)
				return
			}
			sp := opts.Obs.StartSpan(obs.SpanCorner)
			if sp.Enabled() {
				sp.Logf("corner %s", c.Name)
			}
			copts := opts
			copts.Obs = sp
			cell := mk(c.Apply(nominal))
			res, err := Characterize(cell, copts)
			sp.End()
			opts.Obs.Progress(obs.Progress{
				Phase: obs.SpanCorner,
				Done:  int(done.Add(1)), Total: len(corners),
			})
			out[i].Result = res
			out[i].Err = err
		}(i, c)
	}
	wg.Wait()
	return out
}
