package latchchar

// Benchmarks regenerating the paper's evaluation artifacts. Each benchmark
// names the experiment in DESIGN.md / EXPERIMENTS.md it backs. Simulation
// counts are reported as custom metrics so the paper's cost comparisons are
// visible independent of host speed.

import (
	"fmt"
	"testing"

	"latchchar/internal/core"
	"latchchar/internal/transient"
)

func mustCell(b *testing.B, name string) *Cell {
	b.Helper()
	cell, err := CellByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return cell
}

// Benchmark names carry the evaluation mode (mode=exact, mode=fast,
// mode=blockK) and the concurrency bound (p=N) as sub-benchmark components,
// so BENCH_core.json comparisons (benchjson -compare) only ever diff
// like-for-like configurations.

// benchCharacterize traces a full contour and reports cost metrics. The
// factorizations metric is the fast path's acceptance measure: the chord/
// bypass configuration must cut it by ≥ 25% on the TSPC contour.
func benchCharacterize(b *testing.B, cellName string, points int, eval EvalConfig, block int) {
	cell := mustCell(b, cellName)
	b.ResetTimer()
	var sims, pts, facts int
	for i := 0; i < b.N; i++ {
		res, err := Characterize(cell, Options{
			Points:         points,
			BothDirections: true,
			Block:          block,
			Eval:           eval,
		})
		if err != nil {
			b.Fatal(err)
		}
		sims = res.TotalSims()
		pts = len(res.Contour.Points)
		facts = res.Stats.Factorizations
	}
	b.ReportMetric(float64(sims), "sims")
	b.ReportMetric(float64(sims)/float64(pts), "sims/point")
	b.ReportMetric(float64(facts), "factorizations")
}

// benchContourModes runs the exact / fast / block-transient contour modes of
// one cell. Block mode is the ≥2× wall-clock gate over the scalar fast path
// on the trace loop (DESIGN §13).
func benchContourModes(b *testing.B, cellName string, points int) {
	b.Run("mode=exact/p=1", func(b *testing.B) { benchCharacterize(b, cellName, points, EvalConfig{}, 0) })
	b.Run("mode=fast/p=1", func(b *testing.B) { benchCharacterize(b, cellName, points, DefaultFastPath(), 0) })
	b.Run("mode=block8/p=1", func(b *testing.B) { benchCharacterize(b, cellName, points, DefaultFastPath(), 8) })
}

// E2 / Fig. 8: TSPC constant clock-to-Q contour by Euler-Newton tracing,
// exact Newton vs the chord/bypass fast path vs block-transient bundles.
func BenchmarkEulerNewtonTSPC(b *testing.B) { benchContourModes(b, "tspc", 40) }

// E9 / Fig. 12(a): C²MOS contour by Euler-Newton tracing.
func BenchmarkEulerNewtonC2MOS(b *testing.B) { benchContourModes(b, "c2mos", 40) }

// benchSurface generates a brute-force surface and reports cost metrics.
// The sims metric is mode-independent: block mode changes how the grid is
// batched, not how many transients it represents.
func benchSurface(b *testing.B, cellName string, n int, eval EvalConfig, block int) {
	cell := mustCell(b, cellName)
	domain := Rect{MinS: 100e-12, MaxS: 800e-12, MinH: 100e-12, MaxH: 800e-12}
	b.ResetTimer()
	var sims int
	for i := 0; i < b.N; i++ {
		res, err := BruteForce(cell, SurfaceOptions{
			N: n, Domain: domain, Parallelism: 1, Block: block, Eval: eval,
		})
		if err != nil {
			b.Fatal(err)
		}
		sims = res.Sims
	}
	b.ReportMetric(float64(sims), "sims")
}

// E1 / Figs. 1(a), 9: brute-force output-surface generation (TSPC).
// The n=40 case is the paper's 40×40 configuration; at that size the fast
// path and the row-blocked kernel are benchmarked too (the latter is the
// ≥2× surface-path gate of DESIGN §13).
func BenchmarkSurfaceTSPC(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("n=%d/mode=exact/p=1", n), func(b *testing.B) { benchSurface(b, "tspc", n, EvalConfig{}, 0) })
	}
	b.Run("n=40/mode=fast/p=1", func(b *testing.B) { benchSurface(b, "tspc", 40, DefaultFastPath(), 0) })
	b.Run("n=40/mode=block8/p=1", func(b *testing.B) { benchSurface(b, "tspc", 40, DefaultFastPath(), 8) })
}

// E9 / Fig. 12(b): brute-force surface for the C²MOS register.
func BenchmarkSurfaceC2MOS(b *testing.B) {
	b.Run("n=20/mode=exact/p=1", func(b *testing.B) { benchSurface(b, "c2mos", 20, EvalConfig{}, 0) })
}

// E12: the Monte-Carlo batch path — per-sample contour characterization
// under drawn process variations, scalar fast path vs block-transient
// bundles (the MC arm of the ≥2× gate).
func BenchmarkMonteCarloTSPC(b *testing.B) {
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	run := func(b *testing.B, block int) {
		var chars int
		for i := 0; i < b.N; i++ {
			samples := MonteCarlo(mk, DefaultProcess(), MCOptions{
				Samples:     4,
				Seed:        1,
				Parallelism: 1,
				Characterize: Options{
					Points:         20,
					BothDirections: true,
					Block:          block,
					Eval:           DefaultFastPath(),
				},
			})
			chars = 0
			for _, s := range samples {
				if s.Err != nil {
					b.Fatal(s.Err)
				}
				chars++
			}
		}
		b.ReportMetric(float64(chars), "samples")
	}
	b.Run("mode=fast/p=1", func(b *testing.B) { run(b, 0) })
	b.Run("mode=block8/p=1", func(b *testing.B) { run(b, 8) })

	// The naive-vs-variance-aware pair at the paper's contour resolution
	// (n = 40), where full per-sample characterizations dominate: mode=naive
	// re-traces every sample, mode=va replaces the re-traces with warm probe
	// solves seeded from the nominal contour. The sims metrics carry the
	// simulations-saved regression number.
	vaOpts := MCOptions{
		Samples:     4,
		Seed:        1,
		Sampler:     SamplerLHS,
		Parallelism: 1,
		Characterize: Options{
			Points:         40,
			BothDirections: true,
			Eval:           DefaultFastPath(),
		},
	}
	b.Run("mode=naive/n=40/p=1", func(b *testing.B) {
		var sims int
		for i := 0; i < b.N; i++ {
			samples := MonteCarlo(mk, DefaultProcess(), vaOpts)
			sims = 0
			for _, s := range samples {
				if s.Err != nil {
					b.Fatal(s.Err)
				}
				sims += s.Result.TotalSims()
			}
		}
		b.ReportMetric(float64(sims), "sims")
	})
	b.Run("mode=va/n=40/p=1", func(b *testing.B) {
		var sims, saved int
		for i := 0; i < b.N; i++ {
			mc, err := MonteCarloContours(mk, DefaultProcess(), vaOpts)
			if err != nil {
				b.Fatal(err)
			}
			sims, saved = mc.TotalSims, mc.SimsSaved
		}
		b.ReportMetric(float64(sims), "sims")
		b.ReportMetric(float64(saved), "sims-saved")
	})
}

// E10: the paper's headline — speedup of curve tracing over surface
// generation at matched contour resolution, for n ∈ {10, 20, 40}. The
// "speedup" metric is the transient-simulation ratio n²/EN(n); the paper
// reports ≈26× at n = 40 in wall-clock on its prototyping environment.
func BenchmarkSpeedupSweep(b *testing.B) {
	cell := mustCell(b, "tspc")
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var speedup, sims float64
			for i := 0; i < b.N; i++ {
				res, err := Characterize(cell, Options{
					Points:         n,
					BothDirections: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				perPoint := float64(res.TotalSims()) / float64(len(res.Contour.Points))
				sims = perPoint * float64(n)
				speedup = float64(n*n) / sims
			}
			b.ReportMetric(sims, "sims@n")
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// E11: independent setup/hold characterization — direct Newton (the
// DATE 2007 prior work) vs the binary-search practice.
func BenchmarkIndependentChar(b *testing.B) {
	cell := mustCell(b, "tspc")
	opts := IndependentOptions{Tol: 0.05e-12}
	b.Run("newton", func(b *testing.B) {
		var sims int
		for i := 0; i < b.N; i++ {
			s, h, err := IndependentTimes(cell, EvalConfig{}, opts)
			if err != nil {
				b.Fatal(err)
			}
			sims = s.PlainEvals + s.GradEvals + h.PlainEvals + h.GradEvals
		}
		b.ReportMetric(float64(sims), "sims")
	})
	b.Run("bisection", func(b *testing.B) {
		var sims int
		for i := 0; i < b.N; i++ {
			s, h, err := IndependentBaseline(cell, EvalConfig{}, opts)
			if err != nil {
				b.Fatal(err)
			}
			sims = s.PlainEvals + h.PlainEvals
		}
		b.ReportMetric(float64(sims), "sims")
	})
}

// A1: ablation — integration scheme. TRAP is second-order but BE is
// L-stable; both must trace the same contour, and the bench contrasts their
// corrector effort and wall-clock.
func BenchmarkAblationIntegrator(b *testing.B) {
	b.Run("be", func(b *testing.B) { benchCharacterize(b, "tspc", 20, EvalConfig{Method: transient.BE}, 0) })
	b.Run("trap", func(b *testing.B) { benchCharacterize(b, "tspc", 20, EvalConfig{Method: transient.TRAP}, 0) })
}

// A2: ablation — Euler-Newton tangent continuation vs natural-parameter
// continuation (march τs, solve for τh). Natural continuation spends more
// corrector iterations where the curve is steep and fails outright at
// turning points; here it is benchmarked on the benign part of the curve.
func BenchmarkAblationPredictor(b *testing.B) {
	cell := mustCell(b, "tspc")
	ev, err := NewEvaluator(cell, EvalConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Seed on the gentle hold-dominated arm: natural continuation cannot
	// even start on the near-vertical setup arm (∂h/∂τh ≈ 0 there), which
	// is exactly the failure mode TestNaturalContinuationFailsAtTurningPoint
	// demonstrates. The benchmark compares effort where both methods work.
	const seedS, seedH = 400e-12, 180e-12
	traceOpts := TraceOptions{Step: 5e-12, MaxPoints: 15,
		Bounds: Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9}}
	b.Run("euler-newton", func(b *testing.B) {
		var evals int
		for i := 0; i < b.N; i++ {
			ct, err := core.TraceContour(ev, seedS, seedH, traceOpts)
			if err != nil {
				b.Fatal(err)
			}
			evals = ct.GradEvals
		}
		b.ReportMetric(float64(evals), "gradEvals")
	})
	b.Run("natural", func(b *testing.B) {
		var evals int
		for i := 0; i < b.N; i++ {
			ct, err := core.TraceContourNatural(ev, seedS, seedH, traceOpts)
			if err != nil {
				b.Fatal(err)
			}
			evals = ct.GradEvals
		}
		b.ReportMetric(float64(evals), "gradEvals")
	})
}

// fdProblem wraps an evaluator, discarding its analytic gradient and
// rebuilding it from central finite differences — what an implementation
// without the sensitivity machinery would have to do. Each gradient then
// costs three transients instead of one.
type fdProblem struct {
	ev   *Evaluator
	step float64
}

func (f *fdProblem) Eval(s, h float64) (float64, error) { return f.ev.Eval(s, h) }

func (f *fdProblem) EvalGrad(s, h float64) (float64, float64, float64, error) {
	h0, err := f.ev.Eval(s, h)
	if err != nil {
		return 0, 0, 0, err
	}
	hp, err := f.ev.Eval(s+f.step, h)
	if err != nil {
		return 0, 0, 0, err
	}
	hh, err := f.ev.Eval(s, h+f.step)
	if err != nil {
		return 0, 0, 0, err
	}
	return h0, (hp - h0) / f.step, (hh - h0) / f.step, nil
}

// A3: ablation — sensitivity-propagated gradients vs finite-difference
// gradients inside the corrector. The sims metric shows the 3× gradient
// cost (plus accuracy risk) the state-transition sensitivities avoid.
func BenchmarkAblationGradient(b *testing.B) {
	cell := mustCell(b, "tspc")
	ev, err := NewEvaluator(cell, EvalConfig{})
	if err != nil {
		b.Fatal(err)
	}
	seed, err := core.FindSeed(ev, core.SeedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	traceOpts := TraceOptions{Step: 5e-12, MaxPoints: 10,
		Bounds: Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9}}
	b.Run("sensitivity", func(b *testing.B) {
		var sims int
		for i := 0; i < b.N; i++ {
			ev.ResetCounters()
			if _, err := core.TraceContour(ev, seed.TauS, seed.TauH, traceOpts); err != nil {
				b.Fatal(err)
			}
			sims = ev.PlainEvals + ev.GradEvals
		}
		b.ReportMetric(float64(sims), "sims")
	})
	b.Run("finite-difference", func(b *testing.B) {
		fd := &fdProblem{ev: ev, step: 0.05e-12}
		var sims int
		for i := 0; i < b.N; i++ {
			ev.ResetCounters()
			if _, err := core.TraceContour(fd, seed.TauS, seed.TauH, traceOpts); err != nil {
				b.Fatal(err)
			}
			sims = ev.PlainEvals + ev.GradEvals
		}
		b.ReportMetric(float64(sims), "sims")
	})
}

// BenchmarkSingleTransient measures the cost of one h evaluation (one
// transient over the measurement grid) with and without sensitivities —
// the unit everything else is priced in.
func BenchmarkSingleTransient(b *testing.B) {
	cell := mustCell(b, "tspc")
	ev, err := NewEvaluator(cell, EvalConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(300e-12, 200e-12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-gradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ev.EvalGrad(300e-12, 200e-12); err != nil {
				b.Fatal(err)
			}
		}
	})
}
