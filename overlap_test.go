package latchchar

import (
	"testing"

	"latchchar/internal/core"
)

// TestC2MOSHoldGrowsWithOverlap checks the mechanism behind the paper's
// Section IV-B setup: "the register has zero hold time if there is no
// overlap between clk and clk̄. To obtain a positive hold time ... we delay
// the clk̄ input line by 0.3 ns". The independent hold time must therefore
// grow with the clk̄ delay.
func TestC2MOSHoldGrowsWithOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("several characterizations")
	}
	p, tm := DefaultProcess(), DefaultTiming()
	holdFor := func(delay float64) float64 {
		cell := C2MOSCell(p, tm, delay)
		ev, err := NewEvaluator(cell, EvalConfig{})
		if err != nil {
			t.Fatalf("delay %v: %v", delay, err)
		}
		res, err := core.IndependentNR(ev, IndependentOptions{Axis: HoldAxis, Pinned: 600e-12})
		if err != nil {
			t.Fatalf("delay %v: %v", delay, err)
		}
		return res.Skew
	}
	h2 := holdFor(0.20e-9)
	h3 := holdFor(0.30e-9)
	h4 := holdFor(0.40e-9)
	t.Logf("hold time vs clk̄ delay: 0.2ns→%.1f ps, 0.3ns→%.1f ps, 0.4ns→%.1f ps",
		h2*1e12, h3*1e12, h4*1e12)
	if !(h2 < h3 && h3 <= h4+1e-12) {
		t.Errorf("hold time does not grow with clock overlap: %v, %v, %v", h2, h3, h4)
	}
	// The growth tracks the extra overlap until the slave's capture
	// completes within the window, after which it saturates — so require
	// substantial (not proportional) total growth.
	if d := h4 - h2; d < 50e-12 || d > 300e-12 {
		t.Errorf("hold growth %v ps over 200 ps extra overlap", d*1e12)
	}
}
