package latchchar

import (
	"math"
	"testing"
)

func TestMonteCarloDeterministicDraws(t *testing.T) {
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	// Draw-only check: same seed → same processes (without characterizing,
	// use Samples=2 with failing validation shortcut impossible; just
	// compare the drawn parameters of two runs).
	a := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 7, Characterize: Options{Points: 3}})
	b := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 7, Characterize: Options{Points: 3}})
	for i := range a {
		if a[i].Process.NMOS.VT0 != b[i].Process.NMOS.VT0 {
			t.Fatalf("sample %d: non-deterministic draw", i)
		}
	}
	c := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 8, Characterize: Options{Points: 3}})
	if a[0].Process.NMOS.VT0 == c[0].Process.NMOS.VT0 {
		t.Error("different seeds drew identical processes")
	}
}

func TestMonteCarloCharacterizesAndSummarizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple characterizations")
	}
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	samples := MonteCarlo(mk, DefaultProcess(), MCOptions{
		Samples: 4, Seed: 42, Characterize: Options{Points: 8},
	})
	if len(samples) != 4 {
		t.Fatalf("samples: %d", len(samples))
	}
	for _, s := range samples {
		if s.Err != nil {
			t.Fatalf("sample %d: %v", s.Index, s.Err)
		}
	}
	st, err := SummarizeMC(samples, func(r *Result) float64 {
		return r.Calibration.CharDelay
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 150e-12 || st.Mean > 450e-12 {
		t.Errorf("mean delay %v ps implausible", st.Mean*1e12)
	}
	if st.Std <= 0 {
		t.Error("process variation should spread the delay")
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Error("min/max inconsistent")
	}
	// Relative spread should reflect the few-percent parameter sigmas.
	if st.Std/st.Mean > 0.3 {
		t.Errorf("spread %v%% too wide", 100*st.Std/st.Mean)
	}
}

func TestSummarizeMCAllFailed(t *testing.T) {
	samples := []MCSample{{Err: errFake{}}, {Err: errFake{}}}
	if _, err := SummarizeMC(samples, func(r *Result) float64 { return 0 }); err == nil {
		t.Error("all-failed summary accepted")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestMCOptionsDefaults(t *testing.T) {
	o := MCOptions{}.withDefaults()
	if o.Samples != 8 || o.SigmaVT != 0.03 || o.SigmaKP != 0.05 {
		t.Errorf("defaults: %+v", o)
	}
	// The v1 default of Workers = Samples is gone: zero Parallelism means
	// "bounded by the engine pool", so an 8192-sample run no longer spawns
	// 8192 concurrent circuits.
	if o.Parallelism != 0 {
		t.Errorf("concurrency should default to the engine pool bound: %+v", o)
	}
}

func TestMCStatsMath(t *testing.T) {
	samples := []MCSample{
		{Result: &Result{Calibration: Calibration{CharDelay: 1}}},
		{Result: &Result{Calibration: Calibration{CharDelay: 3}}},
	}
	st, err := SummarizeMC(samples, func(r *Result) float64 { return r.Calibration.CharDelay })
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean != 2 || st.Min != 1 || st.Max != 3 || math.Abs(st.Std-1) > 1e-12 {
		t.Errorf("stats: %+v", st)
	}
}
