package latchchar

import (
	"errors"
	"math"
	"testing"
)

func TestMonteCarloDeterministicDraws(t *testing.T) {
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	// Draw-only check: same seed → same processes (without characterizing,
	// use Samples=2 with failing validation shortcut impossible; just
	// compare the drawn parameters of two runs).
	a := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 7, Characterize: Options{Points: 3}})
	b := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 7, Characterize: Options{Points: 3}})
	for i := range a {
		if a[i].Process.NMOS.VT0 != b[i].Process.NMOS.VT0 {
			t.Fatalf("sample %d: non-deterministic draw", i)
		}
	}
	c := MonteCarlo(mk, DefaultProcess(), MCOptions{Samples: 2, Seed: 8, Characterize: Options{Points: 3}})
	if a[0].Process.NMOS.VT0 == c[0].Process.NMOS.VT0 {
		t.Error("different seeds drew identical processes")
	}
}

func TestMonteCarloCharacterizesAndSummarizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple characterizations")
	}
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	samples := MonteCarlo(mk, DefaultProcess(), MCOptions{
		Samples: 4, Seed: 42, Characterize: Options{Points: 8},
	})
	if len(samples) != 4 {
		t.Fatalf("samples: %d", len(samples))
	}
	for _, s := range samples {
		if s.Err != nil {
			t.Fatalf("sample %d: %v", s.Index, s.Err)
		}
	}
	st, err := SummarizeMC(samples, func(r *Result) float64 {
		return r.Calibration.CharDelay
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 150e-12 || st.Mean > 450e-12 {
		t.Errorf("mean delay %v ps implausible", st.Mean*1e12)
	}
	if st.Std <= 0 {
		t.Error("process variation should spread the delay")
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Error("min/max inconsistent")
	}
	// Relative spread should reflect the few-percent parameter sigmas.
	if st.Std/st.Mean > 0.3 {
		t.Errorf("spread %v%% too wide", 100*st.Std/st.Mean)
	}
}

func TestSummarizeMCAllFailed(t *testing.T) {
	samples := []MCSample{{Err: errFake{}}, {Err: errFake{}}}
	if _, err := SummarizeMC(samples, func(r *Result) float64 { return 0 }); err == nil {
		t.Error("all-failed summary accepted")
	}
}

func TestSummarizeMCEdgeCases(t *testing.T) {
	res := func(d float64) MCSample {
		return MCSample{Result: &Result{Calibration: Calibration{CharDelay: d}}}
	}
	delay := func(r *Result) float64 { return r.Calibration.CharDelay }
	cases := []struct {
		name     string
		samples  []MCSample
		wantErr  bool
		wantMean float64
	}{
		{"empty slice", nil, true, 0},
		{"all failed", []MCSample{{Err: errFake{}}, {Err: errFake{}}}, true, 0},
		{"nil results", []MCSample{{}, {}}, true, 0},
		{"all non-finite", []MCSample{res(math.NaN()), res(math.Inf(1))}, true, 0},
		{"non-finite skipped", []MCSample{res(math.NaN()), res(2), res(math.Inf(-1)), res(4)}, false, 3},
		{"failed skipped", []MCSample{{Err: errFake{}}, res(5)}, false, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := SummarizeMC(tc.samples, delay)
			if tc.wantErr {
				if !errors.Is(err, ErrNoSamples) {
					t.Fatalf("err = %v, want ErrNoSamples", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if st.Mean != tc.wantMean {
				t.Errorf("mean = %v, want %v", st.Mean, tc.wantMean)
			}
		})
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

// The MCDraws purity contract: the draw sequence is a function of
// (Seed, Sampler, Samples, SigmaVT, SigmaKP) only — Parallelism and the
// characterization options must never leak into it, or the serving layer's
// seed-keyed result cache would silently return mismatched contours.
func TestMCDrawsDeterministicAcrossParallelism(t *testing.T) {
	for _, sampler := range []Sampler{SamplerIID, SamplerLHS, SamplerSobol} {
		t.Run(string(sampler), func(t *testing.T) {
			base := MCOptions{Samples: 6, Seed: 11, Sampler: sampler}
			ref, err := MCDraws(DefaultProcess(), base)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 3, 16} {
				opts := base
				opts.Parallelism = par
				opts.Characterize = Options{Points: par} // must not matter either
				got, err := MCDraws(DefaultProcess(), opts)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("parallelism %d, sample %d: draws diverge:\n%+v\n%+v",
							par, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func TestMCOptionsDefaults(t *testing.T) {
	o := MCOptions{}.withDefaults()
	if o.Samples != 8 || o.SigmaVT != 0.03 || o.SigmaKP != 0.05 {
		t.Errorf("defaults: %+v", o)
	}
	// The v1 default of Workers = Samples is gone: zero Parallelism means
	// "bounded by the engine pool", so an 8192-sample run no longer spawns
	// 8192 concurrent circuits.
	if o.Parallelism != 0 {
		t.Errorf("concurrency should default to the engine pool bound: %+v", o)
	}
}

func TestMCStatsMath(t *testing.T) {
	samples := []MCSample{
		{Result: &Result{Calibration: Calibration{CharDelay: 1}}},
		{Result: &Result{Calibration: Calibration{CharDelay: 3}}},
	}
	st, err := SummarizeMC(samples, func(r *Result) float64 { return r.Calibration.CharDelay })
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean != 2 || st.Min != 1 || st.Max != 3 || math.Abs(st.Std-1) > 1e-12 {
		t.Errorf("stats: %+v", st)
	}
}
