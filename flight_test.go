package latchchar

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"latchchar/internal/cli"
	"latchchar/internal/core"
	"latchchar/internal/obs"
)

// A ^C mid-trace must leave a usable post-mortem: the flight recorder's
// bounded window dumps as a tracecheck-valid JSONL stream whose header names
// the cancellation and whose events all carry the run's correlation ID —
// the same machinery the daemon uses for timed-out jobs, driven through a
// real SIGINT like TestSIGINTMidTracePartialContour.
func TestSIGINTMidTraceFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-scale transients")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	ev, err := NewEvaluator(TSPCCell(DefaultProcess(), DefaultTiming()), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := FindSeed(ev, SeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	const corr = "corr-sigint-dump"
	run := NewObsRun(WithObsCorr(corr))
	rec := NewFlightRecorder(256)
	run.AddSink(rec)
	p := &sigintAfterGrads{Problem: ev, after: 8, t: t}
	_, err = TraceContourCtx(ctx, p, seed.TauS, seed.TauH, TraceOptions{
		Step: 5e-12, MaxPoints: 40,
		Bounds: Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9},
		Obs:    run,
	})
	if err == nil {
		t.Fatal("SIGINT-canceled trace returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error does not wrap ErrCanceled: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("flight recorder captured nothing")
	}

	var buf bytes.Buffer
	meta := FlightDumpMeta{Corr: corr, Job: "sigint-test", Reason: "canceled", Err: err.Error()}
	if err := rec.WriteDump(&buf, meta, FlightErrorEvent(err)); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateObsDump(events); err != nil {
		t.Fatalf("dump fails validation: %v", err)
	}
	head := events[0]
	if head.Kind != obs.KindDumpMeta || head.Reason != "canceled" || head.Job != "sigint-test" {
		t.Fatalf("dump header = %+v", head)
	}
	for i, e := range events {
		if e.Corr != corr {
			t.Fatalf("event %d (%s) corr = %q, want %q", i, e.Kind, e.Corr, corr)
		}
	}
	// The synthesized error event closes the dump and names the canceled op.
	tail := events[len(events)-1]
	if tail.Kind != obs.KindError {
		t.Fatalf("dump tail kind = %q, want error", tail.Kind)
	}
	if tail.Op == "" {
		t.Error("error event missing the canceled op")
	}
	// The window recorded real tracing work: at least one step span.
	steps := 0
	for _, e := range events {
		if e.Kind == obs.KindSpanBegin && e.Name == obs.SpanStep {
			steps++
		}
	}
	if steps == 0 {
		t.Error("dump window has no step spans")
	}
}

// FlightErrorEvent must expand a convergence failure into the iterate ring
// and step schedule, pass cancellation through with the op, and map nil to
// nil (no error event appended to the dump).
func TestFlightErrorEventShapes(t *testing.T) {
	if ev := FlightErrorEvent(nil); ev != nil {
		t.Fatalf("nil error produced event %+v", ev)
	}
	ce := &core.ConvergenceError{
		Op:       "corrector",
		Iterates: []core.Point{{TauS: 1e-12, TauH: 2e-12, H: 0.5}, {TauS: 3e-12, TauH: 4e-12, H: 0.25}},
		StepLens: []float64{5e-12, 2.5e-12},
		Err:      errors.New("max iterations"),
	}
	ev := FlightErrorEvent(ce)
	if ev == nil || ev.Op != "corrector" {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Iterates) != 2 || ev.Iterates[1].TauS != 3e-12 || ev.Iterates[0].H != 0.5 {
		t.Errorf("iterate ring not preserved: %+v", ev.Iterates)
	}
	if len(ev.StepLens) != 2 || ev.StepLens[0] != 5e-12 {
		t.Errorf("step schedule not preserved: %+v", ev.StepLens)
	}
	if ev.Msg == "" {
		t.Error("error event missing message")
	}
}
