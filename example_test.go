package latchchar_test

import (
	"fmt"

	"latchchar"
)

// A contour is queryable like a lookup table: given a required hold time,
// what setup time keeps the clock-to-Q delay constant? The synthetic
// contour here stands in for a traced one.
func ExampleContour_SetupForHold() {
	ct := &latchchar.Contour{}
	for s := 120.0; s <= 300; s += 20 {
		h := 50 + 2000/(s-90) // picosecond hyperbola
		ct.Points = append(ct.Points, latchchar.ContourPoint{TauS: s * 1e-12, TauH: h * 1e-12})
	}
	s, err := ct.SetupForHold(100e-12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hold 100 ps costs setup %.0f ps\n", s*1e12)
	// Output: hold 100 ps costs setup 132 ps
}

// TradeHold answers the SHIA-STA question: how much setup slack buys the
// missing hold margin?
func ExampleContour_TradeHold() {
	ct := &latchchar.Contour{}
	for s := 120.0; s <= 300; s += 5 {
		h := 50 + 2000/(s-90)
		ct.Points = append(ct.Points, latchchar.ContourPoint{TauS: s * 1e-12, TauH: h * 1e-12})
	}
	newS, newH, err := ct.TradeHold(130e-12, 100e-12, 20e-12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("(130, 100) ps -> (%.0f, %.0f) ps\n", newS*1e12, newH*1e12)
	// Output: (130, 100) ps -> (157, 80) ps
}

// The unit tangent induced by the 1x2 Jacobian (paper eq. (16)) is
// orthogonal to the gradient.
func ExampleTangent() {
	ts, th, err := Tangent(3, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("T = (%.1f, %.1f)\n", ts, th)
	// Output: T = (-0.8, 0.6)
}

// Tangent is re-exported at the package root.
func Tangent(gs, gh float64) (float64, float64, error) {
	return latchchar.Tangent(gs, gh)
}

// Analytic problems plug into the same solvers as circuit evaluators: here
// MPNR finds the nearest point of a circle.
func ExampleSolveMPNR() {
	circle := problemFunc(func(s, h float64) (float64, float64, float64) {
		return s*s + h*h - 1, 2 * s, 2 * h
	})
	res, err := latchchar.SolveMPNR(circle, 2, 0, latchchar.MPNROptions{MaxStep: 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("nearest curve point: (%.3f, %.3f)\n", res.TauS, res.TauH)
	// Output: nearest curve point: (1.000, 0.000)
}

// problemFunc adapts a closure to the Problem interface.
type problemFunc func(s, h float64) (v, gs, gh float64)

func (f problemFunc) Eval(s, h float64) (float64, error) {
	v, _, _ := f(s, h)
	return v, nil
}

func (f problemFunc) EvalGrad(s, h float64) (float64, float64, float64, error) {
	v, gs, gh := f(s, h)
	return v, gs, gh, nil
}
