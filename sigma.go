// The variance-aware Monte-Carlo flow: statistical setup/hold contours at a
// fraction of the naive cost. Naive Monte-Carlo re-characterizes every
// process sample from scratch — bracketing search, full trace, resample —
// so percentile-band accuracy scales as 1/√N in transient simulations.
// Three optimizations stack here:
//
//  1. Quasi-MC sampling (internal/num/sample): Latin-hypercube or scrambled
//     Sobol draws cover the process axes far more evenly than i.i.d. ones.
//  2. Nominal-contour warm starts: the nominal corner is characterized once
//     and resampled onto a probe grid; each sample's contour is then solved
//     by polishing those probe points onto the sample's own curve with MPNR
//     (one or two gradient transients per probe, block-batched when
//     Options.Block > 1), replacing the whole bracketing-plus-trace flow.
//  3. Control variates: percentile bands are estimated from the per-probe
//     *deltas* against the nominal contour rather than absolute contours,
//     so the nominal shape — the dominant, common component — drops out of
//     the variance.
package latchchar

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/num"
	"latchchar/internal/obs"
	"latchchar/internal/stf"
)

// SigmaContours is the statistical contour estimate of a variance-aware
// Monte-Carlo run: per-probe delta statistics against the nominal contour
// and the derived percentile band.
type SigmaContours struct {
	// Level is the band half-width in sample standard deviations (e.g. 3
	// for the 3σ band).
	Level float64
	// Probes are the nominal contour's probe points (arc-length uniform,
	// gradients populated) the deltas are measured at.
	Probes []ContourPoint
	// Delta holds, per probe, the statistics of the signed normal-distance
	// deltas sample contours show against nominal, in seconds. Positive
	// deltas point toward larger skews — the restrictive direction.
	Delta []MCStats
	// Inner is the restrictive percentile contour: nominal displaced by
	// mean + Level·std along each probe normal. A register meeting Inner
	// meets the timing at Level sigmas of process variation.
	Inner *Contour
	// Outer is the permissive band edge: nominal displaced by
	// mean − Level·std.
	Outer *Contour
	// Samples is the number of sample contours folded into the estimate.
	Samples int
}

// MCResult is the outcome of a variance-aware Monte-Carlo run.
type MCResult struct {
	// Nominal is the nominal corner's full characterization, resampled
	// onto the probe grid.
	Nominal *Result
	// Samples holds the per-draw outcomes in sample order. Warm samples
	// carry probe contours (Probes points); cold fallbacks carry a full
	// characterization resampled onto the same grid.
	Samples []MCSample
	// Sigma is the control-variate percentile-band estimate.
	Sigma *SigmaContours
	// NominalSims is the nominal characterization's transient count;
	// TotalSims the whole run's, nominal included.
	NominalSims, TotalSims int
	// SimsSaved estimates the transients avoided vs naive re-
	// characterization: the nominal cost minus the actual cost, summed
	// over warm-started samples (also on the mc_sims_saved counter).
	SimsSaved int
	// WarmSamples and ColdFallbacks count how samples were solved.
	WarmSamples, ColdFallbacks int
	// Elapsed is the wall-clock time of the whole run.
	Elapsed time.Duration
}

// MonteCarloContours is MonteCarloContoursCtx with context.Background().
func MonteCarloContours(mk func(Process) *Cell, nominal Process, opts MCOptions) (*MCResult, error) {
	return MonteCarloContoursCtx(context.Background(), mk, nominal, opts)
}

// MonteCarloContoursCtx runs the variance-aware statistical flow on the
// shared DefaultEngine; see Engine.MonteCarloContours.
func MonteCarloContoursCtx(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) (*MCResult, error) {
	return DefaultEngine().MonteCarloContours(ctx, mk, nominal, opts)
}

// MonteCarloContours characterizes the nominal corner once, solves every
// process sample by polishing the nominal contour's probe points onto the
// sample's curve (falling back to a full cold characterization when the
// warm solve diverges), and estimates percentile-band contours from the
// per-probe deltas. Sampling follows MCOptions.Sampler; the sample set is a
// pure function of the options (see MCDraws). Cancellation stops in-flight
// solves mid-transient; the partial MCResult is returned alongside the
// error. Counters mc_warm_seeds, mc_sims_saved and mc_cv_applied land on
// the run's observability.
func (e *Engine) MonteCarloContours(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) (*MCResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if mk == nil {
		return nil, optErr("mk", nil, "must be set")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	start := time.Now()
	root := o.Characterize.Obs

	// Nominal corner: one full characterization, resampled onto the probe
	// grid so every probe point carries a polished solution and gradient.
	nomOpts := o.Characterize
	nomOpts.Resample = o.Probes
	var nomJob JobResult
	nomJob.Name = "nominal"
	grp := e.pool.NewGroup(ctx)
	grp.Go(func(context.Context) {
		e.runJob(ctx, Job{Name: "nominal", Cell: mk(nominal), Opts: nomOpts, Cold: true},
			nil, &nomJob, batchConfig{span: obs.SpanMCNominal})
	})
	grp.Wait()
	if nomJob.Err != nil {
		return nil, fmt.Errorf("latchchar: nominal characterization: %w", nomJob.Err)
	}
	nomCt := nomJob.Result.Contour
	res := &MCResult{
		Nominal:     nomJob.Result,
		NominalSims: nomJob.Result.TotalSims(),
	}

	procs, err := drawProcesses(nominal, o)
	if err != nil {
		return nil, err
	}
	res.Samples = make([]MCSample, o.Samples)
	for i := range res.Samples {
		res.Samples[i] = MCSample{Index: i, Process: procs[i]}
	}
	var sem chan struct{}
	if o.Parallelism > 0 {
		sem = make(chan struct{}, o.Parallelism)
	}
	var done atomic.Int64
	grp = e.pool.NewGroup(ctx)
	for i := range res.Samples {
		grp.Go(func(context.Context) {
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			e.runSampleProbe(ctx, mk, nomCt, o, &res.Samples[i])
			root.Progress(obs.Progress{
				Phase: obs.SpanMCSample,
				Done:  int(done.Add(1)), Total: len(res.Samples),
			})
		})
	}
	grp.Wait()

	// Cost accounting: a naive run would have paid about the nominal cost
	// for every sample; warm samples paid their probe solves instead.
	var saved int64
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.Result != nil {
			res.TotalSims += s.Result.TotalSims()
		}
		if s.WarmStarted {
			res.WarmSamples++
			if d := res.NominalSims - s.Result.TotalSims(); d > 0 {
				saved += int64(d)
			}
		} else if s.Err == nil && s.Result != nil {
			res.ColdFallbacks++
		}
	}
	res.TotalSims += res.NominalSims
	res.SimsSaved = int(saved)
	root.Count(obs.CtrMCSimsSaved, saved)

	sig, serr := SigmaFromSamples(nomCt, res.Samples, o.SigmaLevel)
	res.Sigma = sig
	res.Elapsed = time.Since(start)
	if serr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return res, fmt.Errorf("latchchar: monte-carlo contours: %w", context.Cause(ctx))
		}
		return res, fmt.Errorf("latchchar: monte-carlo contours: %w", serr)
	}
	root.Count(obs.CtrMCCVApplied, int64(sig.Samples))
	return res, nil
}

// runSampleProbe solves one process sample from the nominal contour: build
// the sample's evaluator (one calibration transient), polish the nominal
// probe points onto the sample's curve with MPNR — block-batched when the
// characterization options request a block width — and fall back to a full
// cold characterization if the warm solve diverges.
func (e *Engine) runSampleProbe(ctx context.Context, mk func(Process) *Cell, nomCt *Contour, o MCOptions, s *MCSample) {
	sp := o.Characterize.Obs.StartSpan(obs.SpanMCSample)
	defer sp.End()
	if sp.Enabled() {
		sp.Logf("mc-sample %d", s.Index)
	}
	if err := s.Process.NMOS.Validate(); err != nil {
		s.Err = fmt.Errorf("latchchar: sample %d: %w", s.Index, err)
		return
	}
	if err := s.Process.PMOS.Validate(); err != nil {
		s.Err = fmt.Errorf("latchchar: sample %d: %w", s.Index, err)
		return
	}
	start := time.Now()
	cell := mk(s.Process)
	inst, err := cell.Build()
	if err != nil {
		s.Err = fmt.Errorf("latchchar: sample %d: build %s: %w", s.Index, cell.Name, err)
		return
	}
	cfg := o.Characterize.Eval
	cfg.Obs = sp
	ev, err := stf.NewEvaluator(inst, cfg)
	if err != nil {
		s.Err = fmt.Errorf("latchchar: sample %d: evaluator: %w", s.Index, err)
		return
	}
	ev.ResetCounters()
	mpnr := o.Characterize.MPNR
	mpnr.Obs = sp
	if mpnr.HTol <= 0 {
		mpnr.HTol = probeHTol
	}
	probe, perr := probeContour(ctx, ev, nomCt, o.Characterize.Block, mpnr)
	finish := func(ct *Contour) *Result {
		r := &Result{
			Contour:     ct,
			Calibration: ev.Calibration(),
			PlainSims:   ev.PlainEvals,
			GradSims:    ev.GradEvals,
			Stats:       ev.Work,
			Elapsed:     time.Since(start),
		}
		if len(ct.Points) > 0 {
			r.Seed = ct.Points[0]
		}
		return r
	}
	if perr == nil {
		s.Result = finish(probe)
		s.WarmStarted = true
		sp.Count(obs.CtrMCWarmSeeds, 1)
		return
	}
	if errors.Is(perr, ErrCanceled) {
		s.Result = finish(probe)
		s.Err = fmt.Errorf("latchchar: sample %d: %w", s.Index, perr)
		return
	}
	// The warm solve diverged on this sample's curve (a large excursion can
	// move the contour outside the probes' MPNR basins): run the cold flow —
	// bracketing search, trace, resample onto the same probe grid — so the
	// sample still contributes to the estimator. The transients already
	// spent stay in the sample's counters.
	spentPlain, spentGrad := ev.PlainEvals, ev.GradEvals
	copts := o.Characterize
	copts.Obs = sp
	copts.Resample = o.Probes
	cres, _, cerr := characterizeCtx(ctx, ev, copts, nil)
	if cres != nil {
		cres.PlainSims += spentPlain
		cres.GradSims += spentGrad
		cres.Elapsed = time.Since(start)
	}
	s.Result = cres
	if cerr != nil {
		s.Err = fmt.Errorf("latchchar: sample %d: %w", s.Index, cerr)
	}
}

// SigmaFromSamples estimates percentile-band contours from sample contours
// measured against a nominal contour — the control-variate estimator of the
// variance-aware flow, exported so brute-force sample sets reduce through
// the identical arithmetic for comparison. A sample contour with exactly
// one point per nominal probe is measured index-wise (the variance-aware
// probe layout, where point j is the MPNR solution nearest probe j); any
// other contour is measured by projecting each probe onto the sample
// polyline, skipping probes whose nearest point clamps to an open end of
// the sample's arc. Probes with fewer than two usable deltas are dropped
// from the estimate (Probes, Delta and the band contours stay parallel).
// Fewer than two usable samples overall, or no covered probe, is an error
// wrapping ErrNoSamples.
func SigmaFromSamples(nominal *Contour, samples []MCSample, level float64) (*SigmaContours, error) {
	if nominal == nil || len(nominal.Points) < 2 {
		return nil, fmt.Errorf("latchchar: sigma contours need a nominal contour with ≥ 2 points")
	}
	if level <= 0 {
		level = 3
	}
	m := len(nominal.Points)
	ns, nh := probeNormals(nominal.Points)
	perProbe := make([][]float64, m)
	used := 0
	for i := range samples {
		s := &samples[i]
		if s.Err != nil || s.Result == nil || s.Result.Contour == nil || len(s.Result.Contour.Points) < 2 {
			continue
		}
		aligned := len(s.Result.Contour.Points) == m
		counted := false
		for j := 0; j < m; j++ {
			p := nominal.Points[j]
			var d float64
			ok := true
			if aligned {
				q := s.Result.Contour.Points[j]
				d = (q.TauS-p.TauS)*ns[j] + (q.TauH-p.TauH)*nh[j]
			} else {
				d, ok = normalDelta(p, ns[j], nh[j], s.Result.Contour)
			}
			if ok && num.IsFinite(d) {
				perProbe[j] = append(perProbe[j], d)
				counted = true
			}
		}
		if counted {
			used++
		}
	}
	if used < 2 {
		return nil, fmt.Errorf("latchchar: sigma contours need ≥ 2 usable samples, got %d: %w", used, ErrNoSamples)
	}
	sig := &SigmaContours{
		Level:   level,
		Inner:   &Contour{Closed: nominal.Closed},
		Outer:   &Contour{Closed: nominal.Closed},
		Samples: used,
	}
	for j := 0; j < m; j++ {
		if len(perProbe[j]) < 2 {
			continue // probe outside most sample arcs: no band estimate here
		}
		st, err := statsOf(perProbe[j])
		if err != nil {
			continue
		}
		p := nominal.Points[j]
		sig.Probes = append(sig.Probes, p)
		sig.Delta = append(sig.Delta, st)
		in := st.Mean + level*st.Std
		out := st.Mean - level*st.Std
		sig.Inner.Points = append(sig.Inner.Points,
			ContourPoint{TauS: p.TauS + in*ns[j], TauH: p.TauH + in*nh[j]})
		sig.Outer.Points = append(sig.Outer.Points,
			ContourPoint{TauS: p.TauS + out*ns[j], TauH: p.TauH + out*nh[j]})
	}
	if len(sig.Delta) == 0 {
		return nil, fmt.Errorf("latchchar: no probe covered by ≥ 2 sample contours: %w", ErrNoSamples)
	}
	return sig, nil
}

// normalDelta measures the signed distance from probe point p to the sample
// polyline along the probe normal (ns, nh): the nearest polyline point,
// projected. Probes whose nearest point clamps to an open end of the
// polyline are outside the sample's traced arc and report ok = false — an
// end vertex would fold tangential truncation into the delta.
func normalDelta(p ContourPoint, ns, nh float64, ct *Contour) (float64, bool) {
	pts := ct.Points
	n := len(pts)
	segs := n - 1
	if ct.Closed {
		segs = n
	}
	best := math.Inf(1)
	var bs, bh float64
	endClamp := false
	for k := 0; k < segs; k++ {
		a, b := pts[k], pts[(k+1)%n]
		vx, vy := b.TauS-a.TauS, b.TauH-a.TauH
		den := vx*vx + vy*vy
		t := 0.0
		if den > 0 {
			t = ((p.TauS-a.TauS)*vx + (p.TauH-a.TauH)*vy) / den
		}
		tc := math.Min(1, math.Max(0, t))
		qs, qh := a.TauS+tc*vx, a.TauH+tc*vy
		d2 := (p.TauS-qs)*(p.TauS-qs) + (p.TauH-qh)*(p.TauH-qh)
		if d2 < best {
			best = d2
			bs, bh = qs, qh
			endClamp = !ct.Closed && ((k == 0 && t < 0) || (k == segs-1 && t > 1))
		}
	}
	if math.IsInf(best, 1) || endClamp {
		return 0, false
	}
	return (bs-p.TauS)*ns + (bh-p.TauH)*nh, true
}

// probeHTol is the residual tolerance of warm probe solves when the caller
// leaves MPNR.HTol unset: at typical contour gradients (~4e9 V/s) 1e-4 V
// bounds the positional error near 0.03 ps — far inside any percentile-band
// tolerance — while saving one to two gradient transients per probe over
// the default sub-femtosecond solve.
const probeHTol = 1e-4

// probeContour polishes the nominal probe points onto this sample's curve.
// A pilot solve at the mid-arc probe measures the sample's contour shift
// first; the remaining probes start displaced by that shift — on the smooth
// arms of the curve the displacement is nearly uniform, so the chained
// seeds land within a picosecond or two of the sample's curve and converge
// in one or two gradient transients each. block > 1 batches the remaining
// probes through the lockstep block-transient kernel in chunks of that many
// lanes. Any failed probe fails the whole contour (the caller falls back to
// a cold characterization).
func probeContour(ctx context.Context, ev *Evaluator, nom *Contour, block int, opts MPNROptions) (*Contour, error) {
	pts := nom.Points
	out := &Contour{Closed: nom.Closed}
	mid := len(pts) / 2
	pilot, err := core.SolveMPNRCtx(ctx, ev, pts[mid].TauS, pts[mid].TauH, opts)
	out.GradEvals += pilot.GradEvals
	if err != nil {
		return nil, fmt.Errorf("pilot probe: %w", err)
	}
	ds := pilot.Point.TauS - pts[mid].TauS
	dh := pilot.Point.TauH - pts[mid].TauH
	seedS := make([]float64, 0, len(pts)-1)
	seedH := make([]float64, 0, len(pts)-1)
	idx := make([]int, 0, len(pts)-1)
	for j := range pts {
		if j == mid {
			continue
		}
		seedS = append(seedS, pts[j].TauS+ds)
		seedH = append(seedH, pts[j].TauH+dh)
		idx = append(idx, j)
	}
	solved := make([]ContourPoint, len(pts))
	solved[mid] = pilot.Point
	if block > 1 {
		for lo := 0; lo < len(idx); lo += block {
			hi := lo + block
			if hi > len(idx) {
				hi = len(idx)
			}
			results, errs, berr := core.SolveMPNRBlockCtx(ctx, ev, seedS[lo:hi], seedH[lo:hi], opts)
			for i := range results {
				out.GradEvals += results[i].GradEvals
			}
			if berr != nil {
				return nil, fmt.Errorf("probe block at %d: %w", idx[lo], berr)
			}
			for i := range results {
				if errs[i] != nil {
					return nil, fmt.Errorf("probe %d: %w", idx[lo+i], errs[i])
				}
				if !results[i].Converged {
					return nil, fmt.Errorf("probe %d: %w", idx[lo+i], core.ErrNoConvergence)
				}
				solved[idx[lo+i]] = results[i].Point
			}
		}
	} else {
		for i, j := range idx {
			r, err := core.SolveMPNRCtx(ctx, ev, seedS[i], seedH[i], opts)
			out.GradEvals += r.GradEvals
			if err != nil {
				return nil, fmt.Errorf("probe %d: %w", j, err)
			}
			solved[j] = r.Point
		}
	}
	out.Points = solved
	return out, nil
}

// probeNormals computes a unit normal per probe point, oriented toward
// larger skews (the restrictive direction, where a slower register pushes
// the contour). The gradient of h is the natural normal; where it is
// degenerate or missing the rotated contour tangent substitutes.
func probeNormals(pts []ContourPoint) (ns, nh []float64) {
	ns = make([]float64, len(pts))
	nh = make([]float64, len(pts))
	for j, p := range pts {
		gs, gh := p.DhdS, p.DhdH
		if n := math.Hypot(gs, gh); n > 0 && num.IsFinite(n) {
			gs, gh = gs/n, gh/n
		} else {
			// Tangent from the neighboring probes, rotated 90°.
			a, b := j, j+1
			if b == len(pts) {
				a, b = j-1, j
			}
			ts, th := pts[b].TauS-pts[a].TauS, pts[b].TauH-pts[a].TauH
			n := math.Hypot(ts, th)
			if n == 0 || !num.IsFinite(n) {
				gs, gh = math.Sqrt2/2, math.Sqrt2/2
			} else {
				gs, gh = -th/n, ts/n
			}
		}
		if gs+gh < 0 {
			gs, gh = -gs, -gh
		}
		ns[j], nh[j] = gs, gh
	}
	return ns, nh
}
