package latchchar

import (
	"context"
	"fmt"

	"latchchar/internal/core"
)

// IndependentOptions re-exports the scalar characterization options.
type IndependentOptions = core.IndependentOptions

// IndependentResult re-exports the scalar characterization result.
type IndependentResult = core.IndependentResult

// Axis selects setup or hold for independent characterization.
type Axis = core.Axis

// Axis values.
const (
	SetupAxis = core.SetupAxis
	HoldAxis  = core.HoldAxis
)

// IndependentTimes is IndependentTimesCtx with context.Background().
func IndependentTimes(cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	return IndependentTimesCtx(context.Background(), cell, evalCfg, opts)
}

// IndependentTimesCtx characterizes the setup and hold times independently
// of each other (Section IIIB) on a fresh instance of the cell, using the
// direct-Newton strategy of the paper's companion work. The returned
// results include simulation counts. The context is checked at every probe
// and threaded into the transient step loop.
func IndependentTimesCtx(ctx context.Context, cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	ev, err := NewEvaluator(cell, evalCfg)
	if err != nil {
		return setup, hold, err
	}
	o := opts
	o.Axis = SetupAxis
	setup, err = core.IndependentNRCtx(ctx, ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: independent setup: %w", err)
	}
	o.Axis = HoldAxis
	hold, err = core.IndependentNRCtx(ctx, ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: independent hold: %w", err)
	}
	return setup, hold, nil
}

// IndependentBaseline is IndependentBaselineCtx with context.Background().
func IndependentBaseline(cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	return IndependentBaselineCtx(context.Background(), cell, evalCfg, opts)
}

// IndependentBaselineCtx runs the industry-practice binary search for the
// same quantities as IndependentTimesCtx, for cost comparison (reproducing
// the 4–10× prior-work speedup).
func IndependentBaselineCtx(ctx context.Context, cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	ev, err := NewEvaluator(cell, evalCfg)
	if err != nil {
		return setup, hold, err
	}
	o := opts
	o.Axis = SetupAxis
	setup, err = core.IndependentBisectionCtx(ctx, ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: baseline setup: %w", err)
	}
	o.Axis = HoldAxis
	hold, err = core.IndependentBisectionCtx(ctx, ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: baseline hold: %w", err)
	}
	return setup, hold, nil
}
