package latchchar

import (
	"fmt"

	"latchchar/internal/core"
)

// IndependentOptions re-exports the scalar characterization options.
type IndependentOptions = core.IndependentOptions

// IndependentResult re-exports the scalar characterization result.
type IndependentResult = core.IndependentResult

// Axis selects setup or hold for independent characterization.
type Axis = core.Axis

// Axis values.
const (
	SetupAxis = core.SetupAxis
	HoldAxis  = core.HoldAxis
)

// IndependentTimes characterizes the setup and hold times independently of
// each other (Section IIIB) on a fresh instance of the cell, using the
// direct-Newton strategy of the paper's companion work. The returned
// results include simulation counts.
func IndependentTimes(cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	ev, err := NewEvaluator(cell, evalCfg)
	if err != nil {
		return setup, hold, err
	}
	o := opts
	o.Axis = SetupAxis
	setup, err = core.IndependentNR(ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: independent setup: %w", err)
	}
	o.Axis = HoldAxis
	hold, err = core.IndependentNR(ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: independent hold: %w", err)
	}
	return setup, hold, nil
}

// IndependentBaseline runs the industry-practice binary search for the same
// quantities, for cost comparison (reproducing the 4–10× prior-work
// speedup).
func IndependentBaseline(cell *Cell, evalCfg EvalConfig, opts IndependentOptions) (setup, hold IndependentResult, err error) {
	ev, err := NewEvaluator(cell, evalCfg)
	if err != nil {
		return setup, hold, err
	}
	o := opts
	o.Axis = SetupAxis
	setup, err = core.IndependentBisection(ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: baseline setup: %w", err)
	}
	o.Axis = HoldAxis
	hold, err = core.IndependentBisection(ev, o)
	if err != nil {
		return setup, hold, fmt.Errorf("latchchar: baseline hold: %w", err)
	}
	return setup, hold, nil
}
