package latchchar

import (
	"testing"
)

func TestStandardCorners(t *testing.T) {
	corners := StandardCorners()
	if len(corners) != 4 {
		t.Fatalf("corners: %d", len(corners))
	}
	nominal := DefaultProcess()
	for _, c := range corners {
		p := c.Apply(nominal)
		if err := p.NMOS.Validate(); err != nil {
			t.Errorf("corner %s: %v", c.Name, err)
		}
	}
	ff := corners[1].Apply(nominal)
	if ff.NMOS.KP <= nominal.NMOS.KP || ff.NMOS.VT0 >= nominal.NMOS.VT0 {
		t.Error("ff corner should be faster")
	}
	lv := corners[3].Apply(nominal)
	if lv.VDD >= nominal.VDD {
		t.Error("lv corner should droop the supply")
	}
	// Apply must not mutate the nominal process.
	if nominal.NMOS.KP != DefaultProcess().NMOS.KP {
		t.Error("corner mutated nominal process")
	}
}

func TestSweepCornersOrderingAndSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple characterizations")
	}
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	corners := []Corner{
		{Name: "tt", Apply: func(p Process) Process { return p }},
		{Name: "ss", Apply: func(p Process) Process {
			p.NMOS.KP *= 0.85
			p.PMOS.KP *= 0.85
			p.NMOS.VT0 *= 1.08
			p.PMOS.VT0 *= 1.08
			return p
		}},
	}
	results := SweepCorners(mk, DefaultProcess(), corners, Options{Points: 10})
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("corner %s: %v", r.Corner, r.Err)
		}
		if len(r.Result.Contour.Points) < 5 {
			t.Errorf("corner %s: %d points", r.Corner, len(r.Result.Contour.Points))
		}
	}
	if results[0].Corner != "tt" || results[1].Corner != "ss" {
		t.Error("corner order not preserved")
	}
	// The slow corner must be slower.
	tt := results[0].Result.Calibration.CharDelay
	ss := results[1].Result.Calibration.CharDelay
	if ss <= tt {
		t.Errorf("slow corner delay %v ps not above nominal %v ps", ss*1e12, tt*1e12)
	}
}

func TestSweepCornersMissingApply(t *testing.T) {
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	results := SweepCorners(mk, DefaultProcess(), []Corner{{Name: "broken"}}, Options{Points: 5})
	if results[0].Err == nil {
		t.Error("nil Apply accepted")
	}
}
