package latchchar

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// checkOptionError asserts the full validation taxonomy on one rejection:
// a typed *OptionError naming the expected field, wrapping ErrInvalidOptions.
func checkOptionError(t *testing.T, name string, err error, field string) {
	t.Helper()
	if err == nil {
		t.Errorf("%s: accepted", name)
		return
	}
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("%s: does not wrap ErrInvalidOptions: %v", name, err)
	}
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Errorf("%s: not a *OptionError: %v", name, err)
		return
	}
	if oe.Field != field {
		t.Errorf("%s: field %q, want %q", name, oe.Field, field)
	}
	if oe.Reason == "" {
		t.Errorf("%s: empty reason", name)
	}
}

func TestOptionErrorRendering(t *testing.T) {
	err := optErr("Eval.Degrade", 1.5, "must be a fraction below 1")
	msg := err.Error()
	for _, want := range []string{"Eval.Degrade", "1.5", "fraction below 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("rendered error misses %q: %s", want, msg)
		}
	}
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Unwrap() != ErrInvalidOptions {
		t.Error("Unwrap does not expose the sentinel")
	}
}

func TestOptionsValidateTable(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name  string
		opts  Options
		field string // "" means valid
	}{
		{"zero defaults", Options{}, ""},
		{"negative points", Options{Points: -1}, "Points"},
		{"nan step", Options{Step: nan}, "Step"},
		{"negative step", Options{Step: -1e-12}, "Step"},
		{"resample of one", Options{Resample: 1}, "Resample"},
		{"negative resample", Options{Resample: -2}, "Resample"},
		{"resample of two ok", Options{Resample: 2}, ""},
		{"negative block", Options{Block: -1}, "Block"},
		{"block of four ok", Options{Block: 4}, ""},
		{"inverted bounds", Options{Bounds: Rect{MinS: 2, MaxS: 1, MinH: 0, MaxH: 1}}, "Bounds"},
		{"infinite bounds", Options{Bounds: Rect{MaxS: math.Inf(1), MaxH: 1}}, "Bounds"},
		{"negative coarse step", Options{Eval: EvalConfig{CoarseStep: -1}}, "Eval.CoarseStep"},
		{"degrade at one", Options{Eval: EvalConfig{Degrade: 1}}, "Eval.Degrade"},
		{"negative degrade", Options{Eval: EvalConfig{Degrade: -0.1}}, "Eval.Degrade"},
		{"fine above coarse", Options{Eval: EvalConfig{CoarseStep: 1e-12, FineStep: 2e-12}}, "Eval.FineStep"},
		{"negative seed window", Options{Seed: SeedOptions{TauHLarge: -1}}, "Seed.TauHLarge"},
		{"seed hi below lo", Options{Seed: SeedOptions{Lo: 2e-12, Hi: 1e-12}}, "Seed.Hi"},
		{"seed hi above lo ok", Options{Seed: SeedOptions{Lo: 1e-12, Hi: 2e-12}}, ""},
		{"negative seed expand", Options{Seed: SeedOptions{MaxExpand: -1}}, "Seed.MaxExpand"},
		{"negative mpnr iters", Options{MPNR: MPNROptions{MaxIter: -1}}, "MPNR.MaxIter"},
		{"nan mpnr htol", Options{MPNR: MPNROptions{HTol: nan}}, "MPNR.HTol"},
		{"negative mpnr tautol", Options{MPNR: MPNROptions{TauTol: -1}}, "MPNR.TauTol"},
		{"infinite mpnr maxstep", Options{MPNR: MPNROptions{MaxStep: math.Inf(1)}}, "MPNR.MaxStep"},
		{"negative mpnr maxstep ok", Options{MPNR: MPNROptions{MaxStep: -1}}, ""}, // disables clamping
		{"negative newton iters", Options{Eval: EvalConfig{MaxNewtonIter: -1}}, "Eval.MaxNewtonIter"},
		{"chord contraction at one", Options{Eval: EvalConfig{ChordContraction: 1}}, "Eval.ChordContraction"},
		{"nan chord contraction", Options{Eval: EvalConfig{ChordContraction: nan}}, "Eval.ChordContraction"},
		{"negative chord age", Options{Eval: EvalConfig{ChordMaxAge: -1}}, "Eval.ChordMaxAge"},
		{"negative bypass vtol", Options{Eval: EvalConfig{BypassVTol: -1e-6}}, "Eval.BypassVTol"},
		{"fast path ok", Options{Eval: EvalConfig{Chord: true, ChordContraction: 0.5, DeviceBypass: true}}, ""},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		checkOptionError(t, c.name, err, c.field)
	}
}

func TestSurfaceOptionsValidateTable(t *testing.T) {
	cases := []struct {
		name  string
		opts  SurfaceOptions
		field string
	}{
		{"zero defaults", SurfaceOptions{}, ""},
		{"two-point grid ok", SurfaceOptions{N: 2}, ""},
		{"grid of one", SurfaceOptions{N: 1}, "N"},
		{"negative grid", SurfaceOptions{N: -3}, "N"},
		{"negative parallelism", SurfaceOptions{Parallelism: -1}, "Parallelism"},
		{"negative block", SurfaceOptions{Block: -1}, "Block"},
		{"block of one ok", SurfaceOptions{Block: 1}, ""},
		{"block of eight ok", SurfaceOptions{Block: 8}, ""},
		{"inverted domain", SurfaceOptions{Domain: Rect{MinS: 1, MaxS: 2, MinH: 2, MaxH: 1}}, "Domain"},
		{"bad nested eval", SurfaceOptions{Eval: EvalConfig{Degrade: 2}}, "Eval.Degrade"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		checkOptionError(t, c.name, err, c.field)
	}
}

func TestMCOptionsValidateTable(t *testing.T) {
	cases := []struct {
		name  string
		opts  MCOptions
		field string
	}{
		{"zero defaults", MCOptions{}, ""},
		{"negative samples", MCOptions{Samples: -1}, "Samples"},
		{"nan sigma vt", MCOptions{SigmaVT: math.NaN()}, "SigmaVT"},
		{"negative sigma kp", MCOptions{SigmaKP: -0.01}, "SigmaKP"},
		{"negative parallelism", MCOptions{Parallelism: -1}, "Parallelism"},
		{"negative nested block", MCOptions{Characterize: Options{Block: -2}}, "Block"},
		// Validation recurses into the nested characterization options.
		{"bad nested characterize", MCOptions{Characterize: Options{Points: -1}}, "Points"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		checkOptionError(t, c.name, err, c.field)
	}
}

func TestEngineOptionsValidateTable(t *testing.T) {
	cases := []struct {
		name  string
		opts  EngineOptions
		field string
	}{
		{"zero defaults", EngineOptions{}, ""},
		{"negative cache disables", EngineOptions{CacheSize: -1}, ""},
		{"negative parallelism", EngineOptions{Parallelism: -1}, "Parallelism"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		checkOptionError(t, c.name, err, c.field)
	}
}

// CornerResults.Err must aggregate failures in sweep order, so a multi-line
// report reads in the same order the corners were requested.
func TestCornerResultsErrOrdering(t *testing.T) {
	if err := (CornerResults{}).Err(); err != nil {
		t.Errorf("empty sweep reports %v", err)
	}
	rs := CornerResults{
		{Corner: "ss", Err: errors.New("trace diverged")},
		{Corner: "tt"},
		{Corner: "ff", Err: errors.New("no seed bracket")},
		{Corner: "lv", Err: errors.New("calibration failed")},
	}
	err := rs.Err()
	if err == nil {
		t.Fatal("failed corners not aggregated")
	}
	msg := err.Error()
	prev := -1
	for _, corner := range []string{"corner ss", "corner ff", "corner lv"} {
		at := strings.Index(msg, corner)
		if at < 0 {
			t.Fatalf("aggregate misses %q: %s", corner, msg)
		}
		if at < prev {
			t.Errorf("%q out of sweep order in %q", corner, msg)
		}
		prev = at
	}
	if strings.Contains(msg, "corner tt") {
		t.Errorf("clean corner reported: %s", msg)
	}
	// The individual wrapped causes stay reachable through errors.Is.
	if !errors.Is(err, rs[0].Err) || !errors.Is(err, rs[3].Err) {
		t.Error("joined error hides the per-corner causes")
	}
}
