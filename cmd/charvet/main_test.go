package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

const brokenDeck = "../../internal/vet/testdata/broken_tspc.cir"

func runCharvet(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(&out, &errw, args)
	return out.String(), errw.String(), err
}

func TestCleanBuiltinCells(t *testing.T) {
	for _, cell := range []string{"tspc", "c2mos", "tgate"} {
		stdout, stderr, err := runCharvet(t, "-cell", cell)
		if err != nil {
			t.Errorf("%s: %v", cell, err)
		}
		if stdout != "" {
			t.Errorf("%s: unexpected findings:\n%s", cell, stdout)
		}
		if !strings.Contains(stderr, "0 error(s), 0 warning(s)") {
			t.Errorf("%s: summary line missing: %q", cell, stderr)
		}
	}
}

func TestCleanExampleNetlists(t *testing.T) {
	paths, err := filepath.Glob("../../examples/netlists/*.cir")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example netlists found: %v", err)
	}
	stdout, _, err := runCharvet(t, paths...)
	if err != nil {
		t.Errorf("shipped examples must vet clean, got %v:\n%s", err, stdout)
	}
}

func TestBrokenNetlistExitsWithFindings(t *testing.T) {
	stdout, _, err := runCharvet(t, brokenDeck)
	if !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	for _, want := range []string{"floating-node", "value-sanity", "unreachable"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("text output missing %q:\n%s", want, stdout)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	stdout, _, err := runCharvet(t, "-json", "-q", brokenDeck)
	if !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	var rep struct {
		Tool        string   `json:"tool"`
		Version     int      `json:"version"`
		Checks      []string `json:"checks"`
		Errors      int      `json:"errors"`
		Diagnostics []struct {
			Check    string `json:"check"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if rep.Tool != "charvet" || rep.Version != 1 {
		t.Errorf("bad envelope: tool=%q version=%d", rep.Tool, rep.Version)
	}
	if rep.Errors == 0 || len(rep.Diagnostics) == 0 {
		t.Errorf("expected error findings in %s", stdout)
	}
	if len(rep.Checks) < 8 {
		t.Errorf("only %d checks ran", len(rep.Checks))
	}
}

func TestSARIFOutput(t *testing.T) {
	stdout, _, err := runCharvet(t, "-sarif", "-q", brokenDeck)
	if !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						HelpURI          string `json:"helpUri"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("malformed SARIF log:\n%s", stdout)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) == 0 {
		t.Fatalf("SARIF log carries no rule metadata:\n%s", stdout)
	}
	for _, r := range rules {
		if r.HelpURI == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %q missing helpUri or shortDescription", r.ID)
		}
	}
}

func TestDisableSuppressesFindings(t *testing.T) {
	_, _, err := runCharvet(t, "-q",
		"-disable", "floating-node,no-ground-path,single-terminal,value-sanity,mpnr-config,event-order",
		brokenDeck)
	if err != nil {
		t.Errorf("all failing checks disabled, want clean exit, got %v", err)
	}
}

func TestEnableRestrictsChecks(t *testing.T) {
	// Only the clock-window analyzer runs; the broken deck's clock is fine.
	_, stderr, err := runCharvet(t, "-enable", "clock-window", brokenDeck)
	if err != nil {
		t.Errorf("want clean, got %v", err)
	}
	if !strings.Contains(stderr, "1 check(s)") {
		t.Errorf("want exactly 1 check in summary: %q", stderr)
	}
}

func TestUnknownCheckIsOperationalError(t *testing.T) {
	_, _, err := runCharvet(t, "-enable", "no-such-check", brokenDeck)
	if err == nil || errors.Is(err, errFindings) {
		t.Errorf("unknown check must be an operational error, got %v", err)
	}
}

func TestListChecks(t *testing.T) {
	stdout, _, err := runCharvet(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(stdout), "\n")); n < 8 {
		t.Errorf("-list printed %d checks, want ≥ 8:\n%s", n, stdout)
	}
}
