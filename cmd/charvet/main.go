// Command charvet statically vets characterization setups — netlists plus
// query parameters — before any transient simulation is spent on them. It
// runs the analyzer registry of internal/vet (netlist topology, stimulus
// windows, value sanity, continuation configuration) and reports structured
// diagnostics as text, JSON or SARIF-lite.
//
// Usage:
//
//	charvet latch.cir                      # vet one netlist
//	charvet examples/netlists/*.cir        # vet many (CI mode)
//	charvet -cell tspc -json               # vet a built-in cell, JSON output
//	charvet -list                          # list registered checks
//	charvet -disable single-terminal x.cir # selection by stable check ID
//
// Exit status: 0 when every target is free of Error-severity findings, 1
// when any Error-severity finding is reported, 2 on usage or load failures.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"latchchar/internal/cli"
	"latchchar/internal/core"
	"latchchar/internal/stf"
	"latchchar/internal/vet"
)

// errFindings marks an Error-severity diagnostic outcome (exit 1), as
// opposed to an operational failure (exit 2).
var errFindings = errors.New("charvet: error-severity findings")

func main() {
	err := run(os.Stdout, os.Stderr, os.Args[1:])
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "charvet:", err)
		os.Exit(2)
	}
}

func run(stdout, stderr io.Writer, args []string) error {
	fs := flag.NewFlagSet("charvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cellName = fs.String("cell", "", "built-in cell to vet: tspc, c2mos or tgate (used when no netlist arguments)")
		deckPath = fs.String("netlist", "", "netlist deck path (same as a positional argument)")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		sarifOut = fs.Bool("sarif", false, "emit diagnostics as SARIF-lite 2.1.0")
		list     = fs.Bool("list", false, "list registered checks and exit")
		enable   = fs.String("enable", "", "comma-separated check IDs: run only these")
		disable  = fs.String("disable", "", "comma-separated check IDs to skip")
		degrade  = fs.Float64("degrade", 0.10, "clock-to-Q degradation defining setup/hold")
		maxSkew  = fs.Float64("maxskew", 1000, "skew domain bound in picoseconds")
		stepPS   = fs.Float64("step", 5, "Euler step length α in picoseconds")
		points   = fs.Int("points", 40, "contour points per trace direction")
		quiet    = fs.Bool("q", false, "suppress the per-target summary line on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := vet.DefaultRegistry()
	if *list {
		for _, a := range reg.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	maxS := *maxSkew * 1e-12
	spec := vet.Spec{
		Eval: stf.Config{
			Degrade:      *degrade,
			MaxSetupSkew: maxS,
		},
		Step:      *stepPS * 1e-12,
		Bounds:    core.Rect{MinS: 1e-12, MaxS: maxS, MinH: 1e-12, MaxH: maxS},
		MaxPoints: *points,
	}
	opts := vet.Options{
		Enable:  cli.SplitChecks(*enable),
		Disable: cli.SplitChecks(*disable),
	}

	// Targets: positional netlist paths, plus -netlist, plus -cell. With no
	// selection at all, vet the default built-in cell.
	paths := fs.Args()
	if *deckPath != "" {
		paths = append(paths, *deckPath)
	}
	type targetRef struct{ name, path string }
	var targets []targetRef
	for _, p := range paths {
		targets = append(targets, targetRef{name: p, path: p})
	}
	if *cellName != "" {
		targets = append(targets, targetRef{name: *cellName})
	}
	if len(targets) == 0 {
		targets = append(targets, targetRef{name: "tspc"})
	}

	anyErrors := false
	var reports []*vet.Report
	for _, tr := range targets {
		cell, err := cli.LoadCell(tr.name, tr.path)
		if err != nil {
			return err
		}
		inst, err := cell.Build()
		if err != nil {
			return fmt.Errorf("build %s: %w", tr.name, err)
		}
		rep, err := reg.Vet(vet.NewTarget(tr.name, inst, spec), opts)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if rep.HasErrors() {
			anyErrors = true
		}
		if !*quiet {
			fmt.Fprintf(stderr, "charvet: %s: %d check(s), %d error(s), %d warning(s)\n",
				rep.Target, len(rep.Checks), rep.Count(vet.Error), rep.Count(vet.Warning))
		}
	}

	switch {
	case *sarifOut:
		// One SARIF log per invocation; merge all targets' results.
		merged := &vet.Report{Target: "charvet"}
		seen := map[string]bool{}
		for _, rep := range reports {
			for _, c := range rep.Checks {
				if !seen[c] {
					seen[c] = true
					merged.Checks = append(merged.Checks, c)
				}
			}
			merged.Diagnostics = append(merged.Diagnostics, rep.Diagnostics...)
		}
		if err := merged.WriteSARIF(stdout, reg.RuleMetas(merged.Checks)); err != nil {
			return err
		}
	case *jsonOut:
		for _, rep := range reports {
			if err := rep.WriteJSON(stdout); err != nil {
				return err
			}
		}
	default:
		for _, rep := range reports {
			if err := rep.WriteText(stdout); err != nil {
				return err
			}
		}
	}
	if anyErrors {
		return errFindings
	}
	return nil
}
