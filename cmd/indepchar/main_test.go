package main

import "testing"

func TestRunTSPC(t *testing.T) {
	if testing.Short() {
		t.Skip("several characterizations")
	}
	if err := run([]string{"-cell", "tspc", "-tol", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadCell(t *testing.T) {
	if err := run([]string{"-cell", "nope"}); err == nil {
		t.Error("unknown cell accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
