// Command indepchar characterizes setup and hold times independently of
// each other (the classic per-axis numbers), comparing the direct-Newton
// strategy against the industry-practice binary search and reporting the
// simulation counts of both.
//
// Usage:
//
//	indepchar -cell tspc -tol 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"latchchar"
	"latchchar/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "indepchar: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("indepchar", flag.ContinueOnError)
	var (
		cellName = fs.String("cell", "tspc", "built-in cell: tspc, c2mos or tgate")
		deckPath = fs.String("netlist", "", "netlist deck path (overrides -cell)")
		pinnedPS = fs.Float64("pinned", 500, "pinned opposite skew (ps)")
		tolPS    = fs.Float64("tol", 0.05, "skew accuracy target (ps)")
		fast     = fs.Bool("fast", false, "enable the chord/bypass Newton fast path (chord iterations + device-eval latency)")
	)
	var obsFlags cli.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsRun, obsClose, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	defer obsClose()
	logger, err := obsFlags.LoggerWithCorr(os.Stderr)
	if err != nil {
		return err
	}
	cell, err := cli.LoadCell(*cellName, *deckPath)
	if err != nil {
		return err
	}
	opts := latchchar.IndependentOptions{
		Pinned: *pinnedPS * 1e-12,
		Tol:    *tolPS * 1e-12,
		Obs:    obsRun,
	}
	evalCfg := latchchar.EvalConfig{}
	if *fast {
		evalCfg = latchchar.DefaultFastPath()
	}
	evalCfg.Obs = obsRun
	// ^C cancels whichever search is in flight mid-transient.
	ctx, stop := cli.SignalContext()
	defer stop()
	logger.Info("independent characterization starting", "cell", cell.Name, "tol_ps", *tolPS)
	sNR, hNR, err := latchchar.IndependentTimesCtx(ctx, cell, evalCfg, opts)
	if err != nil {
		obsFlags.OnFailure(logger, os.Stderr, err)
		return err
	}
	sBis, hBis, err := latchchar.IndependentBaselineCtx(ctx, cell, evalCfg, opts)
	if err != nil {
		obsFlags.OnFailure(logger, os.Stderr, err)
		return err
	}
	logger.Info("independent characterization done",
		"cell", cell.Name,
		"newton_sims", sNR.PlainEvals+sNR.GradEvals+hNR.PlainEvals+hNR.GradEvals,
		"bisection_sims", sBis.PlainEvals+hBis.PlainEvals)
	fmt.Printf("cell %s (pinned opposite skew %s, tolerance %s)\n", cell.Name, cli.Ps(opts.Pinned), cli.Ps(opts.Tol))
	fmt.Printf("%-18s %14s %14s %10s\n", "method", "setup time", "hold time", "sims")
	fmt.Printf("%-18s %14s %14s %10d\n", "direct Newton",
		cli.Ps(sNR.Skew), cli.Ps(hNR.Skew),
		sNR.PlainEvals+sNR.GradEvals+hNR.PlainEvals+hNR.GradEvals)
	fmt.Printf("%-18s %14s %14s %10d\n", "binary search",
		cli.Ps(sBis.Skew), cli.Ps(hBis.Skew),
		sBis.PlainEvals+hBis.PlainEvals)
	nrCost := sNR.PlainEvals + sNR.GradEvals + hNR.PlainEvals + hNR.GradEvals
	bisCost := sBis.PlainEvals + hBis.PlainEvals
	fmt.Printf("speedup: %.1f×\n", float64(bisCost)/float64(nrCost))
	return nil
}
