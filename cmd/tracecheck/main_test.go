package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latchchar/internal/obs"
)

// writeDumpFile records a few spans through a small flight-recorder ring and
// writes a post-mortem dump with an error event, returning the path.
func writeDumpFile(t *testing.T, capacity int) string {
	t.Helper()
	run := obs.New(obs.WithCorr("corr-tc"))
	rec := obs.NewRecorder(capacity)
	run.AddSink(rec)
	for i := 0; i < 6; i++ {
		sp := run.StartSpan(obs.SpanStep)
		sp.End()
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	errEv := &obs.Event{
		Msg:      "corrector diverged",
		Op:       "trace",
		Iterates: []obs.Iterate{{TauS: 1e-12, TauH: 2e-12, H: 0.5}},
		StepLens: []float64{5e-12, 2.5e-12},
	}
	meta := obs.DumpMeta{Corr: "corr-tc", Job: "j1", Reason: "failed", Err: "corrector diverged"}
	if err := rec.WriteDump(f, meta, errEv); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDumpModeAcceptsValidDump(t *testing.T) {
	path := writeDumpFile(t, 4) // ring smaller than the event count: truncation
	if err := run([]string{"-dump", path}); err != nil {
		t.Fatalf("tracecheck -dump rejected a valid dump: %v", err)
	}
	// A truncated dump is NOT a valid full trace — the strict mode must say so.
	if err := run([]string{path}); err == nil {
		t.Fatal("strict mode accepted a truncated dump")
	}
}

func TestDumpModeRejectsPlainTrace(t *testing.T) {
	run2 := obs.New()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	run2.AddSink(sink)
	sp := run2.StartSpan(obs.SpanStep)
	sp.End()
	if err := run2.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// A full trace passes strict mode but has no dump_meta header.
	if err := run([]string{path}); err != nil {
		t.Fatalf("strict mode rejected a valid trace: %v", err)
	}
	if err := run([]string{"-dump", path}); err == nil {
		t.Fatal("-dump accepted a stream without a dump_meta header")
	}
}

func TestCheckDumpReportsHeaderAndIterates(t *testing.T) {
	path := writeDumpFile(t, 4)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := checkDump(&out, events); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"valid dump", "corr corr-tc", "job j1", "reason failed",
		"corrector diverged", "failed op: trace",
		"corrector iterates", "step lengths",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}
