// Command tracecheck validates a JSON-lines observability trace (written by
// the -trace flag of the characterization tools) against event schema v1:
// monotone timestamps, paired span begin/end events and resolvable parents.
// On success it prints the reconstructed span tree with durations; any
// violation exits nonzero. CI runs it over a reduced-grid characterization
// trace to keep the event stream well-formed.
//
// Usage:
//
//	tracecheck run.jsonl
//	latchchar -cell tspc -trace /dev/stdout ... | tracecheck -
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"latchchar/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracecheck <trace.jsonl | ->")
	}
	var r io.Reader = os.Stdin
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		return err
	}
	if err := obs.Validate(events); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	tree, err := obs.SpanTree(events)
	if err != nil {
		return err
	}
	spans, points := 0, 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpanBegin:
			spans++
		case obs.KindPoint:
			points++
		}
	}
	fmt.Printf("valid: %d events, %d spans, %d contour points\n", len(events), spans, points)
	for _, root := range tree {
		printNode(root, 0)
	}
	return nil
}

func printNode(n *obs.SpanNode, depth int) {
	fmt.Printf("%s%s  %v\n", strings.Repeat("  ", depth), n.Name,
		time.Duration(n.DurNs).Round(10*time.Microsecond))
	for _, c := range n.Children {
		printNode(c, depth+1)
	}
}
