// Command tracecheck validates a JSON-lines observability trace (written by
// the -trace flag of the characterization tools) against event schema v1:
// monotone timestamps, paired span begin/end events and resolvable parents.
// On success it prints the reconstructed span tree with durations; any
// violation exits nonzero. CI runs it over a reduced-grid characterization
// trace to keep the event stream well-formed.
//
// With -dump the input is checked as a flight-recorder post-mortem dump
// instead: a dump_meta header, a bounded ring window (where span begins may
// have been evicted, so strict pairing is relaxed) and an optional trailing
// error event carrying the corrector iterate ring. The header and error
// summary are printed.
//
// Usage:
//
//	tracecheck run.jsonl
//	tracecheck -dump flight-job-1.jsonl
//	latchchar -cell tspc -trace /dev/stdout ... | tracecheck -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"latchchar/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	dump := fs.Bool("dump", false, "validate a flight-recorder post-mortem dump instead of a full trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracecheck [-dump] <trace.jsonl | ->")
	}
	var r io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		return err
	}
	if *dump {
		return checkDump(os.Stdout, events)
	}
	if err := obs.Validate(events); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	tree, err := obs.SpanTree(events)
	if err != nil {
		return err
	}
	spans, points := 0, 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpanBegin:
			spans++
		case obs.KindPoint:
			points++
		}
	}
	fmt.Printf("valid: %d events, %d spans, %d contour points\n", len(events), spans, points)
	for _, root := range tree {
		printNode(root, 0)
	}
	return nil
}

// checkDump validates a post-mortem dump and summarizes its header, window
// and error event.
func checkDump(w io.Writer, events []obs.Event) error {
	if err := obs.ValidateDump(events); err != nil {
		return fmt.Errorf("invalid dump: %w", err)
	}
	head := events[0]
	fmt.Fprintf(w, "valid dump: %d events", len(events))
	if head.Corr != "" {
		fmt.Fprintf(w, ", corr %s", head.Corr)
	}
	if head.Job != "" {
		fmt.Fprintf(w, ", job %s", head.Job)
	}
	if head.Reason != "" {
		fmt.Fprintf(w, ", reason %s", head.Reason)
	}
	if head.Dropped > 0 {
		fmt.Fprintf(w, ", %d events evicted from the ring", head.Dropped)
	}
	fmt.Fprintln(w)
	if head.Msg != "" {
		fmt.Fprintf(w, "error: %s\n", head.Msg)
	}
	for i := len(events) - 1; i > 0; i-- {
		if events[i].Kind != obs.KindError {
			continue
		}
		ev := events[i]
		if ev.Op != "" {
			fmt.Fprintf(w, "failed op: %s\n", ev.Op)
		}
		if len(ev.StepLens) > 0 {
			fmt.Fprintf(w, "predictor step lengths tried (ps):")
			for _, a := range ev.StepLens {
				fmt.Fprintf(w, " %.3g", a*1e12)
			}
			fmt.Fprintln(w)
		}
		if len(ev.Iterates) > 0 {
			fmt.Fprintf(w, "last corrector iterates:\n")
			fmt.Fprintf(w, "  %-4s %-12s %-12s %-12s\n", "it", "tau_s_ps", "tau_h_ps", "|h|")
			for k, p := range ev.Iterates {
				h := p.H
				if h < 0 {
					h = -h
				}
				fmt.Fprintf(w, "  %-4d %-12.4f %-12.4f %-12.3e\n", k+1, p.TauS*1e12, p.TauH*1e12, h)
			}
		}
		break
	}
	return nil
}

func printNode(n *obs.SpanNode, depth int) {
	fmt.Printf("%s%s  %v\n", strings.Repeat("  ", depth), n.Name,
		time.Duration(n.DurNs).Round(10*time.Microsecond))
	for _, c := range n.Children {
		printNode(c, depth+1)
	}
}
