package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDumpsAllNodes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "waves.csv")
	if err := run([]string{"-cell", "tspc", "-setup", "400", "-hold", "300", "-post", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 50 {
		t.Fatalf("too few rows: %d", len(lines))
	}
	header := strings.Split(lines[0], ",")
	// t_ns + 9 TSPC nodes (vdd, d, clk, x, y, q, n1, n2, n3).
	if len(header) != 10 {
		t.Fatalf("header columns: %v", header)
	}
	if header[0] != "t_ns" {
		t.Errorf("first column %q", header[0])
	}
	found := false
	for _, h := range header {
		if h == "q" {
			found = true
		}
	}
	if !found {
		t.Error("output node missing from header")
	}
}

func TestRunRejectsBadCell(t *testing.T) {
	if err := run([]string{"-cell", "nope"}); err == nil {
		t.Error("unknown cell accepted")
	}
}
