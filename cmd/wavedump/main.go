// Command wavedump simulates a register at one (setup, hold) skew pair and
// writes every node-voltage waveform as CSV, using the adaptive-timestep
// engine. It is the debugging companion to the characterization tools:
// inspect exactly what the latch did around the active clock edge.
//
// Usage:
//
//	wavedump -cell c2mos -setup 600 -hold 180 -o waves.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"latchchar/internal/circuit"
	"latchchar/internal/cli"
	"latchchar/internal/solver"
	"latchchar/internal/transient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wavedump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wavedump", flag.ContinueOnError)
	var (
		cellName = fs.String("cell", "tspc", "built-in cell: tspc, c2mos or tgate")
		deckPath = fs.String("netlist", "", "netlist deck path (overrides -cell)")
		setupPS  = fs.Float64("setup", 400, "setup skew (ps)")
		holdPS   = fs.Float64("hold", 300, "hold skew (ps)")
		postNS   = fs.Float64("post", 3, "how far past the active edge to simulate (ns)")
		rtol     = fs.Float64("rtol", 1e-3, "adaptive LTE relative tolerance")
		outPath  = fs.String("o", "-", "output path (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cell, err := cli.LoadCell(*cellName, *deckPath)
	if err != nil {
		return err
	}
	inst, err := cell.Build()
	if err != nil {
		return err
	}
	inst.Data.SetSkews(*setupPS*1e-12, *holdPS*1e-12)
	x0, _, err := solver.DCOperatingPoint(inst.Circuit, 0, nil, solver.DCOptions{})
	if err != nil {
		return fmt.Errorf("DC operating point: %w", err)
	}

	numNodes := inst.Circuit.NumNodes()
	probes := make([]circuit.UnknownID, numNodes)
	names := make([]string, numNodes)
	for i := 0; i < numNodes; i++ {
		probes[i] = circuit.UnknownID(i)
		names[i] = inst.Circuit.NodeName(circuit.UnknownID(i))
	}
	tEnd := inst.Edge50 + *postNS*1e-9
	// ^C stops the integration between step attempts; the partial waveform
	// is discarded along with the error.
	ctx, stop := cli.SignalContext()
	defer stop()
	res, err := transient.RunAdaptiveCtx(ctx, inst.Circuit, x0, 0, tEnd, transient.AdaptiveOptions{
		RelTol: *rtol,
		Probes: probes,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cell %s at (τs, τh) = (%.0f, %.0f) ps: %d accepted steps, %d rejected, %d Newton iterations\n",
		cell.Name, *setupPS, *holdPS, res.Stats.Steps, res.Rejected, res.Stats.NewtonIters)

	w, closeFn, err := cli.OpenOutput(*outPath)
	if err != nil {
		return err
	}
	defer closeFn()
	cw := csv.NewWriter(w)
	header := append([]string{"t_ns"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+numNodes)
	for k, tt := range res.Times {
		row[0] = strconv.FormatFloat(tt*1e9, 'f', 6, 64)
		for i := 0; i < numNodes; i++ {
			row[1+i] = strconv.FormatFloat(res.Probes[i][k], 'f', 6, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
