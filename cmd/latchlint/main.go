// Command latchlint runs the internal/lint pass suite — the source-level
// invariants of this codebase (context pairing, span hygiene, counter
// registration, options validation, goroutine discipline, deprecation) — over
// Go packages, as a standalone multichecker or as a `go vet` tool.
//
// Usage:
//
//	latchlint ./...                        # lint the whole module
//	latchlint -list                        # list the registered passes
//	latchlint -enable ctxpair ./internal/… # selection by stable pass ID
//	latchlint -sarif ./... > lint.sarif    # SARIF-lite for CI annotation
//	go vet -vettool=$(which latchlint) ./...   # unitchecker mode
//
// In unitchecker mode the command speaks the cmd/go vet protocol: it answers
// -V=full and -flags probes, consumes the JSON vet config, type-checks
// against the export data cmd/go hands over, and writes the (empty) facts
// file cmd/go expects. Test files are skipped — the invariants police
// production code, matching the standalone driver.
//
// Exit status: 0 when clean, 1 when any finding is reported, 2 on usage or
// load failures.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"latchchar/internal/cli"
	"latchchar/internal/lint"
)

// version is the fingerprint reported to the cmd/go -V=full probe; bump it
// whenever pass behavior changes so stale vet caches are invalidated.
const version = "v1.0.0"

// errFindings marks a diagnostic outcome (exit 1), as opposed to an
// operational failure (exit 2).
var errFindings = errors.New("latchlint: findings")

func main() {
	args := os.Args[1:]
	// cmd/go probes and the unitchecker entry point come before normal flag
	// parsing: `go vet -vettool` invokes the tool as `latchlint -V=full`,
	// `latchlint -flags`, then `latchlint <pkg>.cfg`.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Printf("latchlint version %s\n", version)
		return
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		findings, err := unitcheck(args[len(args)-1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "latchlint:", err)
			os.Exit(2)
		}
		if findings {
			os.Exit(1)
		}
		return
	}
	err := run(os.Stdout, os.Stderr, args)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "latchlint:", err)
		os.Exit(2)
	}
}

// run is the standalone multichecker: load, analyze, render.
func run(stdout, stderr io.Writer, args []string) error {
	fs := flag.NewFlagSet("latchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "directory to resolve package patterns in")
		jsonOut  = fs.Bool("json", false, "emit findings as JSON")
		sarifOut = fs.Bool("sarif", false, "emit findings as SARIF-lite 2.1.0")
		list     = fs.Bool("list", false, "list registered passes and exit")
		enable   = fs.String("enable", "", "comma-separated pass IDs: run only these")
		disable  = fs.String("disable", "", "comma-separated pass IDs to skip")
		quiet    = fs.Bool("q", false, "suppress the summary line on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	analyzers, err := selectAnalyzers(cli.SplitChecks(*enable), cli.SplitChecks(*disable))
	if err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, mod, err := lint.Load(*dir, patterns)
	if err != nil {
		return err
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return err
	}
	rep := lint.ToVetReport(mod.Dir, analyzers, findings)
	rep.Target = strings.Join(patterns, " ")
	switch {
	case *jsonOut:
		if err := rep.WriteJSON(stdout); err != nil {
			return err
		}
	case *sarifOut:
		if err := rep.WriteSARIF(stdout, lint.RuleMetas(analyzers)); err != nil {
			return err
		}
	default:
		for _, f := range findings {
			if _, err := fmt.Fprintf(stdout, "%s: [%s] %s\n", f.Position, f.Analyzer.Name, f.Message); err != nil {
				return err
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr, "latchlint: %d pass(es) over %d package(s): %d finding(s)\n",
			len(analyzers), len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		return errFindings
	}
	return nil
}

// selectAnalyzers applies -enable/-disable to the registry; unknown pass IDs
// are operational errors so typos never silently disable a gate.
func selectAnalyzers(enable, disable []string) ([]*lint.Analyzer, error) {
	for _, name := range append(append([]string(nil), enable...), disable...) {
		if lint.Lookup(name) == nil {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
	}
	skip := map[string]bool{}
	for _, name := range disable {
		skip[name] = true
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if len(enable) > 0 {
			ok := false
			for _, e := range enable {
				if e == a.Name {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		if skip[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no passes to run")
	}
	return out, nil
}

// vetConfig is the subset of the cmd/go vet config JSON the unitchecker
// mode consumes (the same contract x/tools unitchecker speaks).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a cmd/go vet config and
// reports whether findings were emitted. The facts file is written in every
// non-error outcome — cmd/go records it as the action's output even when the
// tool has nothing to say.
func unitcheck(cfgPath string) (findings bool, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return false, writeVetx(cfg.VetxOutput)
	}
	// The invariants police production code: drop test files, and with them
	// external test packages entirely.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return false, writeVetx(cfg.VetxOutput)
	}
	moduleDir, modulePath, ok := findModule(cfg.Dir)
	if !ok {
		// Outside any module (GOPATH dependency): none of our invariants
		// apply there.
		return false, writeVetx(cfg.VetxOutput)
	}
	mod, err := lint.BuildModuleIndex(moduleDir, modulePath)
	if err != nil {
		return false, err
	}
	// ImportMap carries source-level path → canonical path; PackageFile maps
	// canonical path → export data. The importer looks up source-level paths.
	exports := map[string]string{}
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}
	fset := token.NewFileSet()
	pkgPath := cleanImportPath(cfg.ImportPath)
	pkg, err := lint.CheckPackage(fset, pkgPath, cfg.Dir, files, lint.ExportImporter(fset, exports), mod)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, writeVetx(cfg.VetxOutput)
		}
		return false, err
	}
	found, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	if err != nil {
		return false, err
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		return false, err
	}
	w := bufio.NewWriter(os.Stderr)
	for _, f := range found {
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Position, f.Analyzer.Name, f.Message)
	}
	if err := w.Flush(); err != nil {
		return false, err
	}
	return len(found) > 0, nil
}

// writeVetx writes the (empty) facts file cmd/go expects as the vet action's
// output. The pass suite exports no cross-package facts — the ModuleIndex
// syntax scan supplies those instead.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte{}, 0o666)
}

// cleanImportPath strips the test-variant suffix cmd/go appends to
// recompiled-for-test packages ("pkg [pkg.test]"), so pass logic keyed on
// package paths sees the production identity.
func cleanImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modulePath string, ok bool) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			return d, parseModulePath(data), true
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", false
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}
