package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runLatchlint(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(&out, &errw, args)
	return out.String(), errw.String(), err
}

func TestListPasses(t *testing.T) {
	stdout, _, err := runLatchlint(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 6 {
		t.Errorf("-list printed %d passes, want ≥ 6:\n%s", len(lines), stdout)
	}
	for _, want := range []string{"ctxpair", "obsspan", "counterreg", "optvalidate", "nakedgoroutine", "deprecated"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list output missing pass %q", want)
		}
	}
}

func TestModuleIsClean(t *testing.T) {
	// The tree-wide gate: every pass over every module package, zero
	// findings. internal/lint's load test enforces the same invariant at the
	// library layer; this exercises the CLI wiring (selection, summary).
	stdout, stderr, err := runLatchlint(t, "-C", "../..", "./...")
	if err != nil {
		t.Fatalf("module must lint clean, got %v:\n%s", err, stdout)
	}
	if !strings.Contains(stderr, "0 finding(s)") {
		t.Errorf("summary line missing: %q", stderr)
	}
}

func TestSARIFEnvelope(t *testing.T) {
	stdout, _, err := runLatchlint(t, "-C", "../..", "-sarif", "-q", "./internal/lint/...")
	if err != nil {
		t.Fatalf("want clean run, got %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID      string `json:"id"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct{} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed SARIF log:\n%s", stdout)
	}
	driver := log.Runs[0].Tool.Driver
	if driver.Name != "latchlint" {
		t.Errorf("driver name = %q, want latchlint", driver.Name)
	}
	if len(driver.Rules) != 6 {
		t.Errorf("SARIF carries %d rules, want 6 (all passes, even on clean runs)", len(driver.Rules))
	}
	for _, r := range driver.Rules {
		if r.HelpURI == "" {
			t.Errorf("rule %q missing helpUri", r.ID)
		}
	}
}

func TestUnknownPassIsOperationalError(t *testing.T) {
	_, _, err := runLatchlint(t, "-enable", "no-such-pass")
	if err == nil || errors.Is(err, errFindings) {
		t.Errorf("unknown pass must be an operational error, got %v", err)
	}
}

func TestSelectionCannotBeEmpty(t *testing.T) {
	_, _, err := runLatchlint(t, "-enable", "ctxpair", "-disable", "ctxpair")
	if err == nil || errors.Is(err, errFindings) {
		t.Errorf("empty selection must be an operational error, got %v", err)
	}
}

func TestCleanImportPath(t *testing.T) {
	cases := map[string]string{
		"latchchar/internal/lint":                                "latchchar/internal/lint",
		"latchchar/internal/lint [latchchar/internal/lint.test]": "latchchar/internal/lint",
	}
	for in, want := range cases {
		if got := cleanImportPath(in); got != want {
			t.Errorf("cleanImportPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseModulePath(t *testing.T) {
	if got := parseModulePath([]byte("// comment\nmodule latchchar\n\ngo 1.22\n")); got != "latchchar" {
		t.Errorf("parseModulePath = %q, want latchchar", got)
	}
	if got := parseModulePath([]byte("module \"quoted/path\"\n")); got != "quoted/path" {
		t.Errorf("parseModulePath quoted = %q, want quoted/path", got)
	}
}

func TestFindModule(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, path, ok := findModule(wd)
	if !ok {
		t.Fatal("findModule failed from inside the module")
	}
	if path != "latchchar" {
		t.Errorf("module path = %q, want latchchar", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("reported root %s has no go.mod: %v", root, err)
	}
	if _, _, ok := findModule(t.TempDir()); ok {
		t.Error("findModule must fail outside any module")
	}
}

func TestUnitcheckVetxOnlySkips(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfgPath := filepath.Join(dir, "pkg.cfg")
	cfg := vetConfig{ImportPath: "example.com/dep", VetxOnly: true, VetxOutput: vetx}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	findings, err := unitcheck(cfgPath)
	if err != nil || findings {
		t.Fatalf("VetxOnly config: findings=%v err=%v, want clean skip", findings, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}
