// Command benchjson converts `go test -bench` text output into a stable
// JSON document (BENCH_core.json in this repo's harness). The parser follows
// the Go benchmark format: `key: value` configuration lines scope over the
// benchmark lines after them, and each benchmark line carries an iteration
// count followed by value/unit pairs — ns/op plus any custom b.ReportMetric
// units (sims, sims/point, factorizations). The JSON keeps that structure
// one-to-one, so the document can be rendered back to benchfmt for
// benchstat or diffed directly by the regression harness.
//
// With -compare the tool diffs two such documents instead: benchmarks are
// matched by package and name, ns/op is compared, and any slowdown beyond
// -tolerance percent is a regression (exit 1). -warn-only downgrades every
// regression to a warning; -warn-match downgrades only benchmarks whose name
// matches a regexp — the grace period CI gives freshly landed benchmarks
// whose baselines have not stabilized yet, while everything else still
// gates. -min-ns downgrades slowdowns where both sides run under the given
// ns/op floor: a single-iteration smoke pass cannot measure a microsecond
// kernel meaningfully, but a micro-benchmark that blows past the floor is
// still a real regression and fails.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | benchjson -o BENCH_core.json
//	benchjson -o BENCH_core.json bench-root.txt bench-transient.txt
//	benchjson -compare -tolerance 25 BENCH_core.json new.json
//	benchjson -compare -warn-match 'MonteCarlo' BENCH_core.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark result: the scoped configuration keys active when
// the line was read, the iteration count and every value/unit pair.
type Record struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the BENCH_core.json schema.
type Document struct {
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output path (- for stdout)")
	compare := flag.Bool("compare", false, "compare two benchjson documents: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 20, "allowed ns/op slowdown percent before -compare reports a regression")
	warnOnly := flag.Bool("warn-only", false, "with -compare, report regressions but exit 0 (for noisy 1x smoke runs)")
	warnMatch := flag.String("warn-match", "", "with -compare, regexp of benchmark names whose regressions warn instead of failing (grace period for freshly landed benchmarks)")
	minNs := flag.Float64("min-ns", 0, "with -compare, ns/op floor under which slowdowns warn instead of failing (micro-benchmarks are unmeasurable at 1x; 0 = gate everything)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two documents: old.json new.json")
			os.Exit(2)
		}
		var warnRe *regexp.Regexp
		if *warnMatch != "" {
			var err error
			if warnRe, err = regexp.Compile(*warnMatch); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -warn-match:", err)
				os.Exit(2)
			}
		}
		regressed, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance, warnRe, *minNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed && !*warnOnly {
			os.Exit(1)
		}
		return
	}
	if err := run(*out, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare diffs two benchjson documents on ns/op, writing one line per
// matched benchmark. Returns whether any benchmark slowed down beyond the
// tolerance (percent); benchmarks matching warnRe, and slowdowns where both
// sides run under minNs, report as warnings without flipping the verdict.
func runCompare(w io.Writer, oldPath, newPath string, tolerance float64, warnRe *regexp.Regexp, minNs float64) (bool, error) {
	oldDoc, err := readDocument(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := readDocument(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]Record, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Pkg+" "+r.Name] = r
	}
	regressed := false
	matched := 0
	for _, nr := range newDoc.Benchmarks {
		key := nr.Pkg + " " + nr.Name
		or, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "new       %-40s %.4g ns/op (no baseline)\n", nr.Name, nr.Metrics["ns/op"])
			continue
		}
		delete(oldBy, key)
		oldNs, newNs := or.Metrics["ns/op"], nr.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			continue
		}
		matched++
		deltaPct := (newNs - oldNs) / oldNs * 100
		verdict := "ok"
		if deltaPct > tolerance {
			switch {
			case warnRe != nil && warnRe.MatchString(nr.Name):
				verdict = "WARN"
			case minNs > 0 && oldNs < minNs && newNs < minNs:
				verdict = "WARN"
			default:
				verdict = "REGRESSION"
				regressed = true
			}
		}
		fmt.Fprintf(w, "%-9s %-40s %.4g -> %.4g ns/op (%+.1f%%, tolerance %.0f%%)\n",
			verdict, nr.Name, oldNs, newNs, deltaPct, tolerance)
	}
	for key := range oldBy {
		fmt.Fprintf(w, "missing   %s (in baseline only)\n", key)
	}
	if matched == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	return regressed, nil
}

// readDocument loads one benchjson output file.
func readDocument(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

func run(outPath string, inputs []string) error {
	doc := &Document{Benchmarks: []Record{}}
	if len(inputs) == 0 {
		if err := parse(os.Stdin, doc); err != nil {
			return err
		}
	}
	for _, p := range inputs {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		err = parse(f, doc)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "-" || outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outPath, b, 0o644)
}

// parse scans one benchfmt stream, appending records to doc. A FAIL line is
// an error: a failing benchmark run must fail the harness, not produce a
// silently truncated document.
func parse(r io.Reader, doc *Document) error {
	var goos, goarch, pkg, cpu string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "FAIL"):
			return fmt.Errorf("input contains a FAIL line: %q", line)
		}
		if k, v, ok := configLine(line); ok {
			switch k {
			case "goos":
				goos = v
			case "goarch":
				goarch = v
			case "pkg":
				pkg = v
			case "cpu":
				cpu = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, err := parseBenchLine(line)
		if err != nil {
			return err
		}
		rec.Goos, rec.Goarch, rec.Pkg, rec.CPU = goos, goarch, pkg, cpu
		doc.Benchmarks = append(doc.Benchmarks, *rec)
	}
	return sc.Err()
}

// configLine matches benchfmt configuration lines: a lowercase key, a colon,
// a value ("goos: linux").
func configLine(line string) (key, val string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", false
	}
	key = line[:i]
	for _, c := range key {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '/') {
			return "", "", false
		}
	}
	return key, strings.TrimSpace(line[i+1:]), true
}

// parseBenchLine splits "BenchmarkX-8  10  123 ns/op  4.5 sims" into a
// record: name, iterations, then value/unit pairs.
func parseBenchLine(line string) (*Record, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return nil, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	rec := &Record{Name: f[0], Iterations: iters, Metrics: make(map[string]float64, (len(f)-2)/2)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value in %q: %w", line, err)
		}
		rec.Metrics[f[i+1]] = v
	}
	return rec, nil
}
