package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: latchchar
cpu: Example CPU @ 2.00GHz
BenchmarkEulerNewtonTSPC/exact-8   	       1	534954236 ns/op	       923 sims	        22.0 sims/point	     32658 factorizations
BenchmarkEulerNewtonTSPC/fast-8    	       1	301202100 ns/op	       923 sims	        22.0 sims/point	     11295 factorizations
PASS
ok  	latchchar	1.203s
`

func TestParseBenchStream(t *testing.T) {
	var doc Document
	if err := parse(strings.NewReader(sample), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d records, want 2", len(doc.Benchmarks))
	}
	r := doc.Benchmarks[0]
	if r.Name != "BenchmarkEulerNewtonTSPC/exact-8" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Pkg != "latchchar" || r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Example") {
		t.Errorf("config scope not applied: %+v", r)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 534954236, "sims": 923, "sims/point": 22.0, "factorizations": 32658,
	} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %q = %g, want %g", unit, got, want)
		}
	}
	if got := doc.Benchmarks[1].Metrics["factorizations"]; got != 11295 {
		t.Errorf("fast factorizations = %g, want 11295", got)
	}
}

func TestParseRejectsFail(t *testing.T) {
	var doc Document
	err := parse(strings.NewReader("BenchmarkX-8 1 5 ns/op\nFAIL\n"), &doc)
	if err == nil || !strings.Contains(err.Error(), "FAIL") {
		t.Fatalf("err = %v, want FAIL rejection", err)
	}
}

func TestParseMalformedLine(t *testing.T) {
	var doc Document
	if err := parse(strings.NewReader("BenchmarkX-8 1 5\n"), &doc); err == nil {
		t.Fatal("odd field count accepted")
	}
}
