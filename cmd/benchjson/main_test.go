package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: latchchar
cpu: Example CPU @ 2.00GHz
BenchmarkEulerNewtonTSPC/exact-8   	       1	534954236 ns/op	       923 sims	        22.0 sims/point	     32658 factorizations
BenchmarkEulerNewtonTSPC/fast-8    	       1	301202100 ns/op	       923 sims	        22.0 sims/point	     11295 factorizations
PASS
ok  	latchchar	1.203s
`

func TestParseBenchStream(t *testing.T) {
	var doc Document
	if err := parse(strings.NewReader(sample), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d records, want 2", len(doc.Benchmarks))
	}
	r := doc.Benchmarks[0]
	if r.Name != "BenchmarkEulerNewtonTSPC/exact-8" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Pkg != "latchchar" || r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Example") {
		t.Errorf("config scope not applied: %+v", r)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 534954236, "sims": 923, "sims/point": 22.0, "factorizations": 32658,
	} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %q = %g, want %g", unit, got, want)
		}
	}
	if got := doc.Benchmarks[1].Metrics["factorizations"]; got != 11295 {
		t.Errorf("fast factorizations = %g, want 11295", got)
	}
}

func TestParseRejectsFail(t *testing.T) {
	var doc Document
	err := parse(strings.NewReader("BenchmarkX-8 1 5 ns/op\nFAIL\n"), &doc)
	if err == nil || !strings.Contains(err.Error(), "FAIL") {
		t.Fatalf("err = %v, want FAIL rejection", err)
	}
}

func TestParseMalformedLine(t *testing.T) {
	var doc Document
	if err := parse(strings.NewReader("BenchmarkX-8 1 5\n"), &doc); err == nil {
		t.Fatal("odd field count accepted")
	}
}

// writeDoc serializes a Document to a temp file for the compare tests.
func writeDoc(t *testing.T, name string, doc Document) string {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(pkg, name string, nsop float64) Record {
	return Record{Name: name, Pkg: pkg, Iterations: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 100e6),
	}})
	new_ := writeDoc(t, "new.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 110e6),
	}})
	var sb strings.Builder
	regressed, err := runCompare(&sb, old, new_, 20, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("10%% slowdown flagged at 20%% tolerance:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ok") || !strings.Contains(sb.String(), "+10.0%") {
		t.Errorf("report missing verdict/delta:\n%s", sb.String())
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 100e6),
		bench("latchchar", "BenchmarkSteady-8", 50e6),
	}})
	new_ := writeDoc(t, "new.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 160e6),
		bench("latchchar", "BenchmarkSteady-8", 50e6),
	}})
	var sb strings.Builder
	regressed, err := runCompare(&sb, old, new_, 20, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("60%% slowdown not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("report missing REGRESSION line:\n%s", sb.String())
	}
}

func TestCompareReportsNewAndMissing(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 100e6),
		bench("latchchar", "BenchmarkGone-8", 10e6),
	}})
	new_ := writeDoc(t, "new.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkTrace-8", 100e6),
		bench("latchchar", "BenchmarkFresh-8", 5e6),
	}})
	var sb strings.Builder
	regressed, err := runCompare(&sb, old, new_, 20, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unchanged benchmark flagged:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "new") || !strings.Contains(out, "BenchmarkFresh-8") {
		t.Errorf("new benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "missing") || !strings.Contains(out, "BenchmarkGone-8") {
		t.Errorf("missing benchmark not reported:\n%s", out)
	}
}

func TestCompareWarnMatchDowngrades(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMonteCarloTSPC/mode=va-8", 100e6),
		bench("latchchar", "BenchmarkTrace-8", 50e6),
	}})
	new_ := writeDoc(t, "new.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMonteCarloTSPC/mode=va-8", 200e6),
		bench("latchchar", "BenchmarkTrace-8", 50e6),
	}})
	var sb strings.Builder
	regressed, err := runCompare(&sb, old, new_, 20, regexp.MustCompile("MonteCarlo"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("warn-matched regression flipped the verdict:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "WARN") {
		t.Errorf("downgraded regression not reported as WARN:\n%s", sb.String())
	}

	// The same slowdown on a non-matching benchmark must still gate.
	new2 := writeDoc(t, "new2.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMonteCarloTSPC/mode=va-8", 100e6),
		bench("latchchar", "BenchmarkTrace-8", 100e6),
	}})
	sb.Reset()
	regressed, err = runCompare(&sb, old, new2, 20, regexp.MustCompile("MonteCarlo"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("non-matching regression not flagged:\n%s", sb.String())
	}
}

func TestCompareMinNsFloor(t *testing.T) {
	// A 1x smoke run cannot measure a 2 ms kernel: its slowdown warns under
	// the floor. A macro benchmark over the floor still gates, and so does a
	// micro-benchmark that blows past the floor.
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMicro-8", 2e6),
		bench("latchchar", "BenchmarkMacro-8", 500e6),
	}})
	noisy := writeDoc(t, "noisy.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMicro-8", 6e6),
		bench("latchchar", "BenchmarkMacro-8", 500e6),
	}})
	var sb strings.Builder
	regressed, err := runCompare(&sb, old, noisy, 20, nil, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("under-floor slowdown flipped the verdict:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "WARN") {
		t.Errorf("under-floor slowdown not reported as WARN:\n%s", sb.String())
	}

	macro := writeDoc(t, "macro.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMicro-8", 2e6),
		bench("latchchar", "BenchmarkMacro-8", 900e6),
	}})
	sb.Reset()
	if regressed, err = runCompare(&sb, old, macro, 20, nil, 50e6); err != nil || !regressed {
		t.Fatalf("over-floor regression not flagged (err %v):\n%s", err, sb.String())
	}

	blown := writeDoc(t, "blown.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkMicro-8", 80e6),
		bench("latchchar", "BenchmarkMacro-8", 500e6),
	}})
	sb.Reset()
	if regressed, err = runCompare(&sb, old, blown, 20, nil, 50e6); err != nil || !regressed {
		t.Fatalf("micro-benchmark crossing the floor not flagged (err %v):\n%s", err, sb.String())
	}
}

func TestCompareNoOverlapIsError(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkA-8", 100e6),
	}})
	new_ := writeDoc(t, "new.json", Document{Benchmarks: []Record{
		bench("latchchar", "BenchmarkB-8", 100e6),
	}})
	var sb strings.Builder
	if _, err := runCompare(&sb, old, new_, 20, nil, 0); err == nil {
		t.Fatal("disjoint documents compared without error")
	}
}
