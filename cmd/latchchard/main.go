// Command latchchard serves interdependent setup/hold characterization over
// HTTP/JSON: a long-running daemon wrapping latchchar.Engine with request
// coalescing, a result cache, a bounded job queue with backpressure, and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	latchchard -addr :8080
//	latchchard -addr 127.0.0.1:0 -addrfile /tmp/latchchard.addr
//
// Endpoints: POST /v1/characterize, POST /v1/batch, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (NDJSON), /healthz, /metrics, /statusz,
// /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchchard: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchchard", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port, port 0 picks a free one)")
		addrFile     = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts and tests)")
		parallelism  = fs.Int("parallelism", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		cacheSize    = fs.Int("cache", 0, "calibration LRU capacity in entries (0 = default 64, negative disables)")
		queueDepth   = fs.Int("queue", 64, "job queue depth; a full queue answers 429")
		workers      = fs.Int("workers", 0, "concurrently running jobs (0 = engine parallelism)")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "server-side per-job deadline (negative disables)")
		resultCache  = fs.Int("result-cache", 128, "result cache capacity in entries (negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM before in-flight jobs are canceled")
		logLevel     = fs.String("log-level", "info", "structured JSON log level on stderr: debug, info, warn, error (off disables)")
		dumpDir      = fs.String("dump-dir", "", "write flight-recorder post-mortem dumps (JSONL) for failed/timed-out/canceled jobs into this directory")
		recorderSize = fs.Int("recorder", 0, "flight-recorder ring capacity in events per job (0 = default 4096, negative disables)")
		rtSample     = fs.Duration("runtime-sample", 10*time.Second, "runtime self-telemetry sampling interval (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}

	eng, err := latchchar.NewEngine(latchchar.EngineOptions{
		Parallelism: *parallelism,
		CacheSize:   *cacheSize,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	srv, err := serve.New(serve.Config{
		Engine:                eng,
		QueueDepth:            *queueDepth,
		Workers:               *workers,
		JobTimeout:            *jobTimeout,
		ResultCacheSize:       *resultCache,
		Logger:                logger,
		DumpDir:               *dumpDir,
		FlightRecorderSize:    *recorderSize,
		RuntimeSampleInterval: *rtSample,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing addrfile: %w", err)
		}
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := cli.SignalContext()
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "latchchard: listening on %s (parallelism %d, queue %d)\n",
		ln.Addr(), eng.Parallelism(), *queueDepth)
	logger.Info("listening", "addr", ln.Addr().String(),
		"parallelism", eng.Parallelism(), "queue", *queueDepth,
		"dump_dir", *dumpDir, "runtime_sample", rtSample.String())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Signal received: a second one now kills the process the default way.
	stop()
	fmt.Fprintf(os.Stderr, "latchchard: draining (budget %s)\n", *drainTimeout)
	logger.Info("draining", "budget", drainTimeout.String())

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "latchchard: shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		logger.Warn("drain incomplete", "budget", drainTimeout.String(), "error", drainErr)
		return fmt.Errorf("drain: in-flight jobs canceled after %s: %w", *drainTimeout, drainErr)
	}
	fmt.Fprintln(os.Stderr, "latchchard: drained cleanly")
	logger.Info("drained cleanly")
	return nil
}

// buildLogger constructs the daemon's structured JSON logger at the given
// level ("off" discards everything — the plain stderr status lines remain).
func buildLogger(level string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.NewJSONHandler(io.Discard, nil)), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: unknown level %q (have debug, info, warn, error, off)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
