// Command latchchard serves interdependent setup/hold characterization over
// HTTP/JSON: a long-running daemon wrapping latchchar.Engine with request
// coalescing, a result cache, a bounded job queue with backpressure, and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	latchchard -addr :8080
//	latchchard -addr 127.0.0.1:0 -addrfile /tmp/latchchard.addr
//
// Endpoints: POST /v1/characterize, POST /v1/batch, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (NDJSON), /healthz, /metrics, /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchchard: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchchard", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port, port 0 picks a free one)")
		addrFile     = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts and tests)")
		parallelism  = fs.Int("parallelism", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		cacheSize    = fs.Int("cache", 0, "calibration LRU capacity in entries (0 = default 64, negative disables)")
		queueDepth   = fs.Int("queue", 64, "job queue depth; a full queue answers 429")
		workers      = fs.Int("workers", 0, "concurrently running jobs (0 = engine parallelism)")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "server-side per-job deadline (negative disables)")
		resultCache  = fs.Int("result-cache", 128, "result cache capacity in entries (negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM before in-flight jobs are canceled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := latchchar.NewEngine(latchchar.EngineOptions{
		Parallelism: *parallelism,
		CacheSize:   *cacheSize,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	srv, err := serve.New(serve.Config{
		Engine:          eng,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		JobTimeout:      *jobTimeout,
		ResultCacheSize: *resultCache,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing addrfile: %w", err)
		}
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := cli.SignalContext()
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "latchchard: listening on %s (parallelism %d, queue %d)\n",
		ln.Addr(), eng.Parallelism(), *queueDepth)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Signal received: a second one now kills the process the default way.
	stop()
	fmt.Fprintf(os.Stderr, "latchchard: draining (budget %s)\n", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "latchchard: shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: in-flight jobs canceled after %s: %w", *drainTimeout, drainErr)
	}
	fmt.Fprintln(os.Stderr, "latchchard: drained cleanly")
	return nil
}
