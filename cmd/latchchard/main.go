// Command latchchard serves interdependent setup/hold characterization over
// HTTP/JSON. It runs in one of two modes:
//
//   - serve (default): a single-node daemon wrapping latchchar.Engine with
//     request coalescing, a result cache, a bounded job queue with
//     backpressure, and graceful drain on SIGTERM/SIGINT.
//   - coordinator: a cluster front end that consistent-hashes the
//     characterization keyspace across worker daemons, forwards jobs with
//     bounded in-flight limits and retry-with-backoff, proxies NDJSON event
//     streams, and aggregates fleet health and metrics.
//
// Usage:
//
//	latchchard -addr :8080
//	latchchard -addr 127.0.0.1:0 -addrfile /tmp/latchchard.addr
//	latchchard -mode coordinator -workers host1:8080,host2:8080 -addr :8079
//
// Endpoints (both modes): POST /v1/characterize, POST /v1/batch,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/events (NDJSON), GET /v1/healthz,
// GET /v1/metrics, GET /v1/statusz, /debug/pprof. The unprefixed /healthz,
// /metrics and /statusz aliases answer 308 redirects for one release.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/serve"
	"latchchar/internal/serve/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchchard: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchchard", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "serve", "serve (single-node daemon) or coordinator (cluster front end)")
		addr     = fs.String("addr", ":8080", "listen address (host:port, port 0 picks a free one)")
		addrFile = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts and tests)")
		// -workers is mode-dependent: a job-slot count in serve mode, a
		// comma-separated worker address list in coordinator mode.
		workers      = fs.String("workers", "", "serve: concurrently running jobs (default: engine parallelism); coordinator: comma-separated worker addresses")
		parallelism  = fs.Int("parallelism", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		cacheSize    = fs.Int("cache", 0, "calibration LRU capacity in entries (0 = default 64, negative disables)")
		queueDepth   = fs.Int("queue", 64, "job queue depth; a full queue answers 429")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "server-side per-job deadline (negative disables)")
		resultCache  = fs.Int("result-cache", 128, "result cache capacity in entries (negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM before in-flight jobs are canceled")
		logLevel     = fs.String("log-level", "info", "structured JSON log level on stderr: debug, info, warn, error (off disables)")
		dumpDir      = fs.String("dump-dir", "", "write flight-recorder post-mortem dumps (JSONL) for failed/timed-out/canceled jobs into this directory")
		recorderSize = fs.Int("recorder", 0, "flight-recorder ring capacity in events per job (0 = default 4096, negative disables)")
		rtSample     = fs.Duration("runtime-sample", 10*time.Second, "runtime self-telemetry sampling interval (negative disables)")
		mockJob      = fs.Duration("mock-job", 0, "serve jobs with a synthetic fixed service time instead of the engine (load testing only)")

		healthInterval  = fs.Duration("health-interval", 2*time.Second, "coordinator: worker statusz poll cadence")
		forwardInflight = fs.Int("forward-inflight", 32, "coordinator: max concurrently forwarded requests per worker")
		forwardRetries  = fs.Int("forward-retries", 3, "coordinator: distinct workers tried per forward")
		retryBackoff    = fs.Duration("retry-backoff", 100*time.Millisecond, "coordinator: base backoff before a forward retry hop (doubles per attempt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}

	switch *mode {
	case "serve":
		return runServe(serveOpts{
			addr: *addr, addrFile: *addrFile, workers: *workers,
			parallelism: *parallelism, cacheSize: *cacheSize, queueDepth: *queueDepth,
			jobTimeout: *jobTimeout, resultCache: *resultCache, drainTimeout: *drainTimeout,
			dumpDir: *dumpDir, recorderSize: *recorderSize, rtSample: *rtSample,
			mockJob: *mockJob, logger: logger,
		})
	case "coordinator":
		return runCoordinator(coordinatorOpts{
			addr: *addr, addrFile: *addrFile, workers: *workers,
			healthInterval: *healthInterval, forwardInflight: *forwardInflight,
			forwardRetries: *forwardRetries, retryBackoff: *retryBackoff,
			drainTimeout: *drainTimeout, logger: logger,
		})
	default:
		return fmt.Errorf("-mode: unknown mode %q (have serve, coordinator)", *mode)
	}
}

type serveOpts struct {
	addr, addrFile, workers string
	parallelism             int
	cacheSize               int
	queueDepth              int
	jobTimeout              time.Duration
	resultCache             int
	drainTimeout            time.Duration
	dumpDir                 string
	recorderSize            int
	rtSample                time.Duration
	mockJob                 time.Duration
	logger                  *slog.Logger
}

func runServe(o serveOpts) error {
	jobSlots := 0
	if o.workers != "" {
		n, err := strconv.Atoi(o.workers)
		if err != nil {
			return fmt.Errorf("-workers: in serve mode -workers is a job-slot count, got %q", o.workers)
		}
		jobSlots = n
	}
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{
		Parallelism: o.parallelism,
		CacheSize:   o.cacheSize,
		Logger:      o.logger,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	srv, err := serve.New(serve.Config{
		Engine:                eng,
		QueueDepth:            o.queueDepth,
		Workers:               jobSlots,
		JobTimeout:            o.jobTimeout,
		ResultCacheSize:       o.resultCache,
		Logger:                o.logger,
		DumpDir:               o.dumpDir,
		FlightRecorderSize:    o.recorderSize,
		RuntimeSampleInterval: o.rtSample,
		MockJobTime:           o.mockJob,
	})
	if err != nil {
		return err
	}
	banner := fmt.Sprintf("latchchard: listening on %%s (parallelism %d, queue %d)\n",
		eng.Parallelism(), o.queueDepth)
	return serveLoop(o.addr, o.addrFile, banner, o.drainTimeout, o.logger, srv, srv.Drain)
}

type coordinatorOpts struct {
	addr, addrFile, workers string
	healthInterval          time.Duration
	forwardInflight         int
	forwardRetries          int
	retryBackoff            time.Duration
	drainTimeout            time.Duration
	logger                  *slog.Logger
}

func runCoordinator(o coordinatorOpts) error {
	var addrs []string
	for _, a := range strings.Split(o.workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-workers: coordinator mode needs a comma-separated worker address list")
	}
	co, err := cluster.New(cluster.Config{
		Workers:        addrs,
		HealthInterval: o.healthInterval,
		MaxInFlight:    o.forwardInflight,
		ForwardRetries: o.forwardRetries,
		RetryBackoff:   o.retryBackoff,
		Logger:         o.logger,
	})
	if err != nil {
		return err
	}
	banner := fmt.Sprintf("latchchard: coordinating %d workers on %%s\n", len(addrs))
	return serveLoop(o.addr, o.addrFile, banner, o.drainTimeout, o.logger, co, co.Drain)
}

// serveLoop runs either mode's handler on addr until SIGTERM/SIGINT, then
// drains within the budget. banner is a Printf format with one %s verb for
// the bound address.
func serveLoop(addr, addrFile, banner string, drainTimeout time.Duration,
	logger *slog.Logger, handler http.Handler, drain func(context.Context) error) error {

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing addrfile: %w", err)
		}
	}
	hs := &http.Server{Handler: handler}

	ctx, stop := cli.SignalContext()
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, banner, ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Signal received: a second one now kills the process the default way.
	stop()
	fmt.Fprintf(os.Stderr, "latchchard: draining (budget %s)\n", drainTimeout)
	logger.Info("draining", "budget", drainTimeout.String())

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "latchchard: shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		logger.Warn("drain incomplete", "budget", drainTimeout.String(), "error", drainErr)
		return fmt.Errorf("drain: in-flight jobs canceled after %s: %w", drainTimeout, drainErr)
	}
	fmt.Fprintln(os.Stderr, "latchchard: drained cleanly")
	logger.Info("drained cleanly")
	return nil
}

// buildLogger constructs the daemon's structured JSON logger at the given
// level ("off" discards everything — the plain stderr status lines remain).
func buildLogger(level string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.NewJSONHandler(io.Discard, nil)), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: unknown level %q (have debug, info, warn, error, off)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
