package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/internal/serve"
	"latchchar/serveclient"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make servesmoke`:
// start latchchard on a random port, characterize the TSPC cell through the
// HTTP API, poll the job to completion, check the metrics exposition, then
// drain via SIGTERM and require a clean exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addrfile", addrFile,
			"-parallelism", "2",
			"-drain-timeout", "120s",
		})
	}()

	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not write the addrfile")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/characterize", "application/json",
		strings.NewReader(`{"cell":"tspc","options":{"points":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("characterize: status %d: %s", resp.StatusCode, body)
	}
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Contour []json.RawMessage `json:"contour"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	for deadline := time.Now().Add(120 * time.Second); ; {
		r, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job poll: status %d: %s", r.StatusCode, b)
		}
		if err := json.Unmarshal(b, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			break
		}
		if job.State == "failed" || job.State == "canceled" {
			t.Fatalf("job %s: %s", job.State, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", job.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if job.Result == nil || len(job.Result.Contour) == 0 {
		t.Fatal("finished job has an empty contour")
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{
		"calibrations_reused",
		"latchchard_jobs_done_total 1",
		"latchchard_request_seconds_bucket",
		"latchchard_goroutines",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("/metrics missing %q:\n%s", want, met)
		}
	}
	// The exposition must pass the promtool-style lint: metadata on every
	// family, unique series, complete cumulative histograms.
	if err := serve.LintMetrics(strings.NewReader(string(met))); err != nil {
		t.Errorf("metrics lint: %v", err)
	}

	// /v1/statusz decodes into the public wire type via the Go client.
	sc := serveclient.New(base)
	st, err := sc.Statusz(context.Background())
	if err != nil {
		t.Fatalf("/v1/statusz: %v", err)
	}
	if st.JobsDone != 1 || st.Workers <= 0 || st.Runtime == nil {
		t.Errorf("statusz shape off: jobs_done=%d workers=%d runtime=%v",
			st.JobsDone, st.Workers, st.Runtime)
	}
	quantiled := false
	for _, q := range st.Latency {
		if q.Route == "/v1/jobs/{id}" && q.Count > 0 && q.P99MS >= q.P50MS {
			quantiled = true
		}
	}
	if !quantiled {
		t.Errorf("statusz has no job-poll latency quantiles: %+v", st.Latency)
	}

	// SIGTERM drains: the daemon must exit cleanly on its own.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still listening after drain")
	}
}

// TestServeSmokeFlightDump boots the daemon with a deliberately tiny job
// timeout and -dump-dir: the timed-out job must leave a validating
// flight-recorder dump on disk. CI points LATCHCHARD_SMOKE_DUMPDIR at a
// workspace path and uploads the dump as a build artifact.
func TestServeSmokeFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a characterization into its timeout")
	}
	dumpDir := os.Getenv("LATCHCHARD_SMOKE_DUMPDIR")
	if dumpDir == "" {
		dumpDir = t.TempDir()
	} else if err := os.MkdirAll(dumpDir, 0o755); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addrfile", addrFile,
			"-parallelism", "2",
			"-job-timeout", "300ms",
			"-dump-dir", dumpDir,
			"-log-level", "off",
			"-drain-timeout", "60s",
		})
	}()
	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not write the addrfile")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/characterize", "application/json",
		strings.NewReader(`{"cell":"tspc","options":{"points":40},"wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Corr  string `json:"corr"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if job.State != "canceled" {
		t.Fatalf("state = %q (error %q), want canceled by the 300ms timeout", job.State, job.Error)
	}

	dumpPath := filepath.Join(dumpDir, "flight-"+job.ID+".jsonl")
	f, err := os.Open(dumpPath)
	if err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	events, rerr := obs.ReadJSONL(f)
	f.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if err := latchchar.ValidateObsDump(events); err != nil {
		t.Fatalf("dump fails validation: %v", err)
	}
	head := events[0]
	if head.Reason != "timeout" || head.Job != job.ID || head.Corr != job.Corr {
		t.Errorf("dump header reason=%q job=%q corr=%q (status corr %q)",
			head.Reason, head.Job, head.Corr, job.Corr)
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// The flag set must reject unknown flags rather than silently serving.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
