package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make servesmoke`:
// start latchchard on a random port, characterize the TSPC cell through the
// HTTP API, poll the job to completion, check the metrics exposition, then
// drain via SIGTERM and require a clean exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addrfile", addrFile,
			"-parallelism", "2",
			"-drain-timeout", "120s",
		})
	}()

	var base string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not write the addrfile")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/characterize", "application/json",
		strings.NewReader(`{"cell":"tspc","options":{"points":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("characterize: status %d: %s", resp.StatusCode, body)
	}
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Contour []json.RawMessage `json:"contour"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	for deadline := time.Now().Add(120 * time.Second); ; {
		r, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job poll: status %d: %s", r.StatusCode, b)
		}
		if err := json.Unmarshal(b, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			break
		}
		if job.State == "failed" || job.State == "canceled" {
			t.Fatalf("job %s: %s", job.State, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", job.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if job.Result == nil || len(job.Result.Contour) == 0 {
		t.Fatal("finished job has an empty contour")
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{"calibrations_reused", "latchchard_jobs_done_total 1"} {
		if !strings.Contains(string(met), want) {
			t.Errorf("/metrics missing %q:\n%s", want, met)
		}
	}

	// SIGTERM drains: the daemon must exit cleanly on its own.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still listening after drain")
	}
}

// The flag set must reject unknown flags rather than silently serving.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
