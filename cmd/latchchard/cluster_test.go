package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"latchchar/internal/loadgen"
	"latchchar/internal/serve"
	"latchchar/serveclient"
)

// bootDaemon starts one latchchard process-in-a-goroutine and returns its
// base URL and exit channel.
func bootDaemon(t *testing.T, args ...string) (string, chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() { done <- run(append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrFile}, args...)) }()
	for deadline := time.Now().Add(15 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not write the addrfile")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSmoke is the end-to-end cluster exercise behind
// `make clustersmoke`: two mock-mode workers, one coordinator, a few seconds
// of mixed load through the public client, then fleet status, metrics lint,
// deprecated-alias redirect, and a clean SIGTERM drain of all three daemons.
func TestClusterSmoke(t *testing.T) {
	w1, done1 := bootDaemon(t, "-mock-job", "10ms", "-log-level", "off", "-drain-timeout", "30s")
	w2, done2 := bootDaemon(t, "-mock-job", "10ms", "-log-level", "off", "-drain-timeout", "30s")
	co, done3 := bootDaemon(t,
		"-mode", "coordinator",
		"-workers", strings.TrimPrefix(w1, "http://")+","+strings.TrimPrefix(w2, "http://"),
		"-health-interval", "200ms",
		"-log-level", "off",
		"-drain-timeout", "30s",
	)

	// A few seconds of mixed load: hot shapes (cache + coalescing), cold
	// inline netlists (unique keys spread over the ring), streamed jobs
	// (event proxy).
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:  co,
		Clients:  6,
		Duration: 2 * time.Second,
		Mix:      loadgen.Mix{Hot: 0.6, Cold: 0.3, Stream: 0.1},
		HotCells: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops < 10 {
		t.Fatalf("load run completed only %d ops", rep.Ops)
	}
	if rep.Errors > 0 {
		t.Errorf("load run: %d of %d ops failed", rep.Errors, rep.Ops)
	}

	// Let the coordinator's next health poll pick up the workers' final
	// counters, then check the aggregated fleet status through the client.
	time.Sleep(500 * time.Millisecond)
	sc := serveclient.New(co)
	st, err := sc.ClusterStatusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersConfigured != 2 || st.WorkersUp != 2 {
		t.Fatalf("fleet: configured=%d up=%d, want 2/2", st.WorkersConfigured, st.WorkersUp)
	}
	if st.Forwards == 0 || st.Requests == 0 {
		t.Errorf("coordinator forwarded nothing: requests=%d forwards=%d", st.Requests, st.Forwards)
	}
	if st.StreamEvents == 0 {
		t.Error("stream proxy carried no events")
	}
	if st.Aggregate.JobsDone == 0 {
		t.Error("fleet aggregate reports zero finished jobs")
	}
	if len(st.WorkerList) != 2 {
		t.Fatalf("worker list has %d entries", len(st.WorkerList))
	}
	for _, wk := range st.WorkerList {
		if wk.StatusZ == nil {
			t.Fatalf("worker %s has no polled statusz", wk.Addr)
		}
		if wk.StatusZ.Requests == 0 {
			t.Errorf("worker %s received no traffic — keyspace not partitioned", wk.Addr)
		}
	}

	// The coordinator's metrics exposition passes the promtool-style lint
	// and carries the cluster families.
	met, err := sc.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.LintMetrics(strings.NewReader(string(met))); err != nil {
		t.Errorf("coordinator metrics lint: %v", err)
	}
	for _, want := range []string{
		"latchcoord_forwards_total",
		"latchcoord_worker_up",
		"latchcoord_fleet_jobs_done_total",
		"latchcoord_request_seconds_bucket",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	// The deprecated unprefixed alias answers a deprecation-flagged 308.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(co + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect || resp.Header.Get("Deprecation") != "true" {
		t.Errorf("deprecated alias: status=%d deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}

	// SIGTERM drains coordinator and workers; every daemon exits cleanly.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"worker1": done1, "worker2": done2, "coordinator": done3} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit after SIGTERM: %v", name, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
}
