// Command latchload replays a synthetic characterization workload against a
// latchchard daemon or cluster coordinator and prints throughput and latency
// percentiles. It speaks the public v1 API through serveclient — the same
// door every real client uses.
//
// Usage:
//
//	latchload -target http://127.0.0.1:8080 -duration 5s -clients 8
//	latchload -target http://coord:8079 -mix hot=0.7,cold=0.2,batch=0.05,stream=0.05 \
//	    -label hot-mix -workers 2 -bench-out BENCH_serve.json
//
// With -bench-out, the run's report is upserted into the JSON bench file by
// (label, workers) so repeated runs at different worker counts build the
// scaling curve in place.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"latchchar/internal/cli"
	"latchchar/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchload: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchload", flag.ContinueOnError)
	var (
		target    = fs.String("target", "", "base URL of the daemon or coordinator (required)")
		duration  = fs.Duration("duration", 5*time.Second, "load duration")
		clients   = fs.Int("clients", 8, "concurrent closed-loop clients")
		mixSpec   = fs.String("mix", "hot=1", "operation mix, e.g. hot=0.7,cold=0.2,batch=0.05,stream=0.05")
		hotCells  = fs.Int("hot-cells", 4, "distinct hot request shapes")
		batchSize = fs.Int("batch-size", 4, "jobs per batch operation")
		seed      = fs.Int64("seed", 1, "op-sequence seed")
		hotFresh  = fs.Bool("hot-no-cache", false, "set no_cache on hot requests (bench mode: pay service time per op)")
		label     = fs.String("label", "", "bench label for -bench-out (e.g. hot-mix)")
		workers   = fs.Int("workers", 0, "worker count behind the target, recorded in the bench entry")
		benchOut  = fs.String("bench-out", "", "upsert the report into this BENCH_serve.json file")
		benchNote = fs.String("bench-note", "", "methodology note stored in the bench file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		return err
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:    *target,
		Clients:    *clients,
		Duration:   *duration,
		Mix:        mix,
		HotCells:   *hotCells,
		BatchSize:  *batchSize,
		Seed:       *seed,
		HotNoCache: *hotFresh,
	})
	if err != nil {
		return err
	}
	rep.Label = *label
	rep.Workers = *workers

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if rep.Ops == 0 {
		return fmt.Errorf("no operation completed against %s", *target)
	}
	if rep.Errors > rep.Ops/2 {
		return fmt.Errorf("%d of %d operations failed", rep.Errors, rep.Ops)
	}

	if *benchOut != "" {
		if *label == "" {
			return fmt.Errorf("-bench-out requires -label")
		}
		if err := loadgen.MergeBenchFile(*benchOut, *benchNote, []loadgen.Report{rep}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "latchload: merged %s workers=%d into %s\n", *label, *workers, *benchOut)
	}
	return nil
}
