package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesSurfaceAndContour(t *testing.T) {
	dir := t.TempDir()
	surf := filepath.Join(dir, "surface.csv")
	cont := filepath.Join(dir, "contour.csv")
	err := run([]string{
		"-cell", "tspc", "-n", "9",
		"-smin", "150", "-smax", "600", "-hmin", "100", "-hmax", "600",
		"-surface", surf, "-contour", cont,
	})
	if err != nil {
		t.Fatal(err)
	}
	sdata, err := os.ReadFile(surf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(sdata)), "\n")
	if len(lines) != 1+9*9 {
		t.Fatalf("surface rows: %d, want %d", len(lines), 1+81)
	}
	cdata, err := os.ReadFile(cont)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cdata), "polyline,tau_s_ps,tau_h_ps") {
		t.Errorf("contour header: %q", string(cdata)[:40])
	}
}

func TestRunRejectsBadCell(t *testing.T) {
	if err := run([]string{"-cell", "nope"}); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestRunDelaySurface(t *testing.T) {
	dir := t.TempDir()
	surf := filepath.Join(dir, "delays.csv")
	err := run([]string{
		"-cell", "tspc", "-n", "6", "-delay",
		"-smin", "150", "-smax", "600", "-hmin", "120", "-hmax", "600",
		"-surface", surf,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(surf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+36 {
		t.Fatalf("rows: %d", len(lines))
	}
	// Values are delays in seconds: a few hundred ps.
	if !strings.Contains(string(data), "e-10") {
		t.Errorf("expected sub-ns delays in output")
	}
}

func TestRunVetGateBlocksBrokenNetlist(t *testing.T) {
	deck := "../../internal/vet/testdata/broken_tspc.cir"
	err := run([]string{"-netlist", deck, "-n", "3", "-surface", filepath.Join(t.TempDir(), "s.csv")})
	if err == nil || !strings.Contains(err.Error(), "vet:") {
		t.Errorf("vet gate did not block broken netlist: %v", err)
	}
}
