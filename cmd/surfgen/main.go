// Command surfgen generates the brute-force output surface of a register
// over an n×n grid of setup/hold skews and extracts the constant clock-to-Q
// contour by marching-squares interpolation — the prior-practice baseline
// the Euler-Newton tracer is compared against.
//
// Usage:
//
//	surfgen -cell tspc -n 40 -surface surface.csv -contour contour.csv
//	surfgen -cell tspc -n 20 -progress -trace sweep.jsonl -surface /dev/null
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/vet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "surfgen: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("surfgen", flag.ContinueOnError)
	var (
		cellName  = fs.String("cell", "tspc", "built-in cell: tspc, c2mos or tgate")
		deckPath  = fs.String("netlist", "", "netlist deck path (overrides -cell)")
		n         = fs.Int("n", 40, "grid resolution per axis (n² simulations)")
		sMin      = fs.Float64("smin", 10, "minimum setup skew (ps)")
		sMax      = fs.Float64("smax", 800, "maximum setup skew (ps)")
		hMin      = fs.Float64("hmin", 10, "minimum hold skew (ps)")
		hMax      = fs.Float64("hmax", 800, "maximum hold skew (ps)")
		workers   = fs.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		fast      = fs.Bool("fast", false, "enable the chord/bypass Newton fast path (chord iterations + device-eval latency)")
		block     = fs.Int("block", 0, "block-transient lane count: evaluate each grid row in N-lane lockstep chunks (0 or 1 = scalar; output-level surface only)")
		delayMode = fs.Bool("delay", false, "generate the clock-to-Q delay surface (the paper's primary formulation) instead of the output-level surface")
		surfOut   = fs.String("surface", "-", "surface CSV path (- for stdout)")
		contOut   = fs.String("contour", "", "extracted-contour CSV path (empty = skip)")
		doVet     = fs.Bool("vet", true, "run charvet pre-flight checks and abort on error findings")
		disable   = fs.String("disable", "", "comma-separated vet check IDs to skip")
	)
	var obsFlags cli.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsRun, obsClose, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	defer obsClose()
	logger, err := obsFlags.LoggerWithCorr(os.Stderr)
	if err != nil {
		return err
	}
	cell, err := cli.LoadCell(*cellName, *deckPath)
	if err != nil {
		return err
	}
	evalCfg := latchchar.EvalConfig{}
	if *fast {
		evalCfg = latchchar.DefaultFastPath()
	}
	if *doVet {
		// The n² grid makes a broken setup especially expensive: vet the
		// netlist and the sweep box before dispatching workers.
		spec := vet.Spec{
			Eval: evalCfg,
			Bounds: latchchar.Rect{
				MinS: *sMin * 1e-12, MaxS: *sMax * 1e-12,
				MinH: *hMin * 1e-12, MaxH: *hMax * 1e-12,
			},
		}
		if err := cli.Gate(os.Stderr, cell, spec, vet.Options{Disable: cli.SplitChecks(*disable)}); err != nil {
			return err
		}
	}
	surfOpts := latchchar.SurfaceOptions{
		N:    *n,
		Eval: evalCfg,
		Domain: latchchar.Rect{
			MinS: *sMin * 1e-12, MaxS: *sMax * 1e-12,
			MinH: *hMin * 1e-12, MaxH: *hMax * 1e-12,
		},
		Parallelism: *workers,
		Block:       *block,
		Obs:         obsRun,
	}
	// ^C cancels the grid sweep; pending rows are abandoned within one
	// transient step each.
	ctx, stop := cli.SignalContext()
	defer stop()
	var sf *latchchar.Surface
	var contour []latchchar.Polyline
	var sims int
	var elapsed time.Duration
	var v [][]float64
	logger.Info("surface sweep starting", "cell", cell.Name, "n", *n, "delay_mode", *delayMode)
	if *delayMode {
		res, err := latchchar.BruteForceDelayCtx(ctx, cell, surfOpts)
		if err != nil {
			obsFlags.OnFailure(logger, os.Stderr, err)
			return err
		}
		sf, contour, sims, elapsed = res.Surface, res.Contour, res.Sims, res.Elapsed
		v = res.Surface.V // delays in seconds
	} else {
		res, err := latchchar.BruteForceCtx(ctx, cell, surfOpts)
		if err != nil {
			obsFlags.OnFailure(logger, os.Stderr, err)
			return err
		}
		sf, contour, sims, elapsed = res.Surface, res.Contour, res.Sims, res.Elapsed
		// The stored samples are h = Q(tf) − r; write the raw output voltage
		// (h + r), matching the surfaces of Figs. 1(a) and 9.
		v = make([][]float64, len(res.Surface.S))
		for i := range v {
			v[i] = make([]float64, len(res.Surface.H))
			for j := range v[i] {
				v[i][j] = res.Surface.V[i][j] + res.Calibration.R
			}
		}
	}
	fmt.Fprintf(os.Stderr, "cell %s: %d simulations in %v; %d contour polylines\n",
		cell.Name, sims, elapsed.Round(1e6), len(contour))
	logger.Info("surface sweep done", "cell", cell.Name, "sims", sims,
		"polylines", len(contour), "dur_ms", elapsed.Milliseconds())
	w, closeFn, err := cli.OpenOutput(*surfOut)
	if err != nil {
		return err
	}
	if err := cli.WriteSurfaceCSV(w, sf.S, sf.H, v); err != nil {
		closeFn()
		return err
	}
	if err := closeFn(); err != nil {
		return err
	}

	if *contOut != "" {
		polys := make([][][2]float64, len(contour))
		for k, pl := range contour {
			polys[k] = pl.Pts
		}
		cw, closeC, err := cli.OpenOutput(*contOut)
		if err != nil {
			return err
		}
		defer closeC()
		return cli.WritePolylinesCSV(cw, polys)
	}
	return nil
}
