// Command latchchar characterizes interdependent setup/hold times of a
// register by Euler-Newton curve tracing, writing the constant clock-to-Q
// contour as CSV or JSON.
//
// Usage:
//
//	latchchar -cell tspc -points 40 -o contour.csv
//	latchchar -netlist mylatch.cir -both -format json
//	latchchar -cell tspc -progress -trace run.jsonl -chrometrace run.json -v
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/liberty"
	"latchchar/internal/stf"
	"latchchar/internal/transient"
	"latchchar/internal/vet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchchar: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchchar", flag.ContinueOnError)
	var (
		cellName = fs.String("cell", "tspc", "built-in cell: tspc, c2mos or tgate")
		deckPath = fs.String("netlist", "", "netlist deck path (overrides -cell)")
		points   = fs.Int("points", 40, "contour points per trace direction")
		stepPS   = fs.Float64("step", 5, "Euler step length α in picoseconds")
		both     = fs.Bool("both", true, "trace both directions from the seed")
		resample = fs.Int("resample", 0, "resample the contour to exactly N arc-length-uniform points (0 = off)")
		energy   = fs.Bool("energy", false, "add a per-point supply-energy column (csv format only)")
		method   = fs.String("method", "be", "integration method: be or trap")
		fast     = fs.Bool("fast", false, "enable the chord/bypass Newton fast path (chord iterations + device-eval latency)")
		block    = fs.Int("block", 0, "predictor lookahead width: correct N predicted points per cycle as one lockstep block-transient (0 or 1 = scalar)")
		degrade  = fs.Float64("degrade", 0.10, "clock-to-Q degradation defining setup/hold")
		maxSkew  = fs.Float64("maxskew", 1000, "skew domain bound in picoseconds")
		format   = fs.String("format", "csv", "output format: csv, json or lib (Liberty fragment)")
		outPath  = fs.String("o", "-", "output path (- for stdout)")
		doVet    = fs.Bool("vet", true, "run charvet pre-flight checks and abort on error findings")
		disable  = fs.String("disable", "", "comma-separated vet check IDs to skip")
		mcN      = fs.Int("mc", 0, "run a variance-aware Monte-Carlo characterization over N process samples (built-in cells only; 0 = off)")
		sampler  = fs.String("sampler", "iid", "Monte-Carlo sampling scheme: iid, lhs or sobol")
		seed     = fs.Int64("seed", 0, "Monte-Carlo draw seed (deterministic sample set)")
		sigma    = fs.Float64("sigma", 3, "sigma band half-width in sample standard deviations")
		probes   = fs.Int("probes", 0, "Monte-Carlo probe points per contour (0 = default)")
	)
	var obsFlags cli.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsRun, obsClose, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	defer obsClose()
	logger, err := obsFlags.LoggerWithCorr(os.Stderr)
	if err != nil {
		return err
	}

	cell, err := cli.LoadCell(*cellName, *deckPath)
	if err != nil {
		return err
	}
	evalCfg := stf.Config{
		Degrade:      *degrade,
		MaxSetupSkew: *maxSkew * 1e-12,
	}
	if *fast {
		evalCfg = evalCfg.WithFastPath()
	}
	if *doVet {
		// Static pre-flight over the netlist and query parameters before
		// burning transient simulations on a broken setup.
		spec := vet.Spec{
			Eval:      evalCfg,
			Step:      *stepPS * 1e-12,
			MaxPoints: *points,
		}
		if err := cli.Gate(os.Stderr, cell, spec, vet.Options{Disable: cli.SplitChecks(*disable)}); err != nil {
			return err
		}
	}
	evalCfg.Obs = obsRun
	opts := latchchar.Options{
		Points:         *points,
		Step:           *stepPS * 1e-12,
		BothDirections: *both,
		Resample:       *resample,
		Block:          *block,
		Obs:            obsRun,
		Eval:           evalCfg,
	}
	switch *method {
	case "be":
		opts.Eval.Method = transient.BE
	case "trap":
		opts.Eval.Method = transient.TRAP
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if *mcN > 0 {
		if *deckPath != "" {
			return fmt.Errorf("-mc needs a built-in cell; inline netlists carry no process parameters to perturb")
		}
		mcOpts := latchchar.MCOptions{
			Samples:      *mcN,
			Seed:         *seed,
			Sampler:      latchchar.Sampler(*sampler),
			SigmaLevel:   *sigma,
			Probes:       *probes,
			Characterize: opts,
		}
		return runMC(cell, mcOpts, *format, *outPath, logger)
	}
	ev, err := latchchar.NewEvaluator(cell, opts.Eval)
	if err != nil {
		return err
	}
	// ^C cancels the trace mid-transient; the partial contour is discarded
	// and the structured cancellation error rendered.
	ctx, stop := cli.SignalContext()
	defer stop()
	logger.Info("characterization starting", "cell", cell.Name, "points", *points, "step_ps", *stepPS)
	res, err := latchchar.CharacterizeWithEvaluatorCtx(ctx, ev, opts)
	if err != nil {
		obsFlags.OnFailure(logger, os.Stderr, err)
		return err
	}
	logger.Info("characterization done",
		"cell", cell.Name, "contour_points", len(res.Contour.Points),
		"sims", res.TotalSims(), "dur_ms", res.Elapsed.Milliseconds())

	cal := res.Calibration
	fmt.Fprintf(os.Stderr, "cell %s: characteristic clock-to-Q %s (tc = %.4f ns), tf = %.4f ns, r = %.3f V\n",
		cell.Name, cli.Ps(cal.CharDelay), cal.TC*1e9, cal.Tf*1e9, cal.R)
	fmt.Fprintf(os.Stderr, "traced %d contour points with %d simulations (%d plain + %d gradient) in %v\n",
		len(res.Contour.Points), res.TotalSims(), res.PlainSims, res.GradSims, res.Elapsed.Round(1e6))

	w, closeFn, err := cli.OpenOutput(*outPath)
	if err != nil {
		return err
	}
	defer closeFn()
	switch *format {
	case "csv":
		if *energy {
			energies := make([]float64, len(res.Contour.Points))
			for i, p := range res.Contour.Points {
				energies[i], err = ev.SupplyEnergy(p.TauS, p.TauH)
				if err != nil {
					return err
				}
			}
			return cli.WriteContourEnergyCSV(w, res.Contour.Points, energies)
		}
		return cli.WriteContourCSV(w, res.Contour.Points)
	case "json":
		return cli.WriteContourJSON(w, res.Contour.Points)
	case "lib":
		return liberty.Export(w, cell.Name, res.Contour, res.Calibration, liberty.Options{
			Stamp: time.Now(),
		})
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// runMC runs the variance-aware Monte-Carlo flow and writes the restrictive
// sigma corner — the inner band edge — in the selected format. The permissive
// edge and the per-probe statistics ride along on stderr.
func runMC(cell *latchchar.Cell, mcOpts latchchar.MCOptions, format, outPath string, logger *slog.Logger) error {
	mk, err := latchchar.CellMakerByName(cell.Name, cell.Timing)
	if err != nil {
		return err
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	logger.Info("monte-carlo characterization starting", "cell", cell.Name,
		"samples", mcOpts.Samples, "sampler", string(mcOpts.Sampler))
	mc, err := latchchar.MonteCarloContoursCtx(ctx, mk, cell.Process, mcOpts)
	if err != nil {
		return err
	}
	logger.Info("monte-carlo characterization done",
		"cell", cell.Name, "samples", len(mc.Samples), "warm", mc.WarmSamples,
		"sims", mc.TotalSims, "sims_saved", mc.SimsSaved, "dur_ms", mc.Elapsed.Milliseconds())
	fmt.Fprintf(os.Stderr, "cell %s: %d samples (%d warm, %d cold fallbacks), %d simulations total (%d saved vs naive)\n",
		cell.Name, len(mc.Samples), mc.WarmSamples, mc.ColdFallbacks, mc.TotalSims, mc.SimsSaved)
	fmt.Fprintf(os.Stderr, "%.0f-sigma band over %d probes from %d sample contours\n",
		mc.Sigma.Level, len(mc.Sigma.Probes), mc.Sigma.Samples)

	w, closeFn, err := cli.OpenOutput(outPath)
	if err != nil {
		return err
	}
	defer closeFn()
	switch format {
	case "csv":
		return cli.WriteContourCSV(w, mc.Sigma.Inner.Points)
	case "json":
		return cli.WriteContourJSON(w, mc.Sigma.Inner.Points)
	case "lib":
		return latchchar.ExportLibertySigma(w, cell.Name, mc, liberty.Options{Stamp: time.Now()})
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
