// Command latchchar characterizes interdependent setup/hold times of a
// register by Euler-Newton curve tracing, writing the constant clock-to-Q
// contour as CSV or JSON.
//
// Usage:
//
//	latchchar -cell tspc -points 40 -o contour.csv
//	latchchar -netlist mylatch.cir -both -format json
//	latchchar -cell tspc -progress -trace run.jsonl -chrometrace run.json -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"latchchar"
	"latchchar/internal/cli"
	"latchchar/internal/liberty"
	"latchchar/internal/stf"
	"latchchar/internal/transient"
	"latchchar/internal/vet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprint(os.Stderr, "latchchar: ")
		cli.RenderError(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latchchar", flag.ContinueOnError)
	var (
		cellName = fs.String("cell", "tspc", "built-in cell: tspc, c2mos or tgate")
		deckPath = fs.String("netlist", "", "netlist deck path (overrides -cell)")
		points   = fs.Int("points", 40, "contour points per trace direction")
		stepPS   = fs.Float64("step", 5, "Euler step length α in picoseconds")
		both     = fs.Bool("both", true, "trace both directions from the seed")
		resample = fs.Int("resample", 0, "resample the contour to exactly N arc-length-uniform points (0 = off)")
		energy   = fs.Bool("energy", false, "add a per-point supply-energy column (csv format only)")
		method   = fs.String("method", "be", "integration method: be or trap")
		fast     = fs.Bool("fast", false, "enable the chord/bypass Newton fast path (chord iterations + device-eval latency)")
		block    = fs.Int("block", 0, "predictor lookahead width: correct N predicted points per cycle as one lockstep block-transient (0 or 1 = scalar)")
		degrade  = fs.Float64("degrade", 0.10, "clock-to-Q degradation defining setup/hold")
		maxSkew  = fs.Float64("maxskew", 1000, "skew domain bound in picoseconds")
		format   = fs.String("format", "csv", "output format: csv, json or lib (Liberty fragment)")
		outPath  = fs.String("o", "-", "output path (- for stdout)")
		doVet    = fs.Bool("vet", true, "run charvet pre-flight checks and abort on error findings")
		disable  = fs.String("disable", "", "comma-separated vet check IDs to skip")
	)
	var obsFlags cli.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsRun, obsClose, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	defer obsClose()
	logger, err := obsFlags.LoggerWithCorr(os.Stderr)
	if err != nil {
		return err
	}

	cell, err := cli.LoadCell(*cellName, *deckPath)
	if err != nil {
		return err
	}
	evalCfg := stf.Config{
		Degrade:      *degrade,
		MaxSetupSkew: *maxSkew * 1e-12,
	}
	if *fast {
		evalCfg = evalCfg.WithFastPath()
	}
	if *doVet {
		// Static pre-flight over the netlist and query parameters before
		// burning transient simulations on a broken setup.
		spec := vet.Spec{
			Eval:      evalCfg,
			Step:      *stepPS * 1e-12,
			MaxPoints: *points,
		}
		if err := cli.Gate(os.Stderr, cell, spec, vet.Options{Disable: cli.SplitChecks(*disable)}); err != nil {
			return err
		}
	}
	evalCfg.Obs = obsRun
	opts := latchchar.Options{
		Points:         *points,
		Step:           *stepPS * 1e-12,
		BothDirections: *both,
		Resample:       *resample,
		Block:          *block,
		Obs:            obsRun,
		Eval:           evalCfg,
	}
	switch *method {
	case "be":
		opts.Eval.Method = transient.BE
	case "trap":
		opts.Eval.Method = transient.TRAP
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	ev, err := latchchar.NewEvaluator(cell, opts.Eval)
	if err != nil {
		return err
	}
	// ^C cancels the trace mid-transient; the partial contour is discarded
	// and the structured cancellation error rendered.
	ctx, stop := cli.SignalContext()
	defer stop()
	logger.Info("characterization starting", "cell", cell.Name, "points", *points, "step_ps", *stepPS)
	res, err := latchchar.CharacterizeWithEvaluatorCtx(ctx, ev, opts)
	if err != nil {
		obsFlags.OnFailure(logger, os.Stderr, err)
		return err
	}
	logger.Info("characterization done",
		"cell", cell.Name, "contour_points", len(res.Contour.Points),
		"sims", res.TotalSims(), "dur_ms", res.Elapsed.Milliseconds())

	cal := res.Calibration
	fmt.Fprintf(os.Stderr, "cell %s: characteristic clock-to-Q %s (tc = %.4f ns), tf = %.4f ns, r = %.3f V\n",
		cell.Name, cli.Ps(cal.CharDelay), cal.TC*1e9, cal.Tf*1e9, cal.R)
	fmt.Fprintf(os.Stderr, "traced %d contour points with %d simulations (%d plain + %d gradient) in %v\n",
		len(res.Contour.Points), res.TotalSims(), res.PlainSims, res.GradSims, res.Elapsed.Round(1e6))

	w, closeFn, err := cli.OpenOutput(*outPath)
	if err != nil {
		return err
	}
	defer closeFn()
	switch *format {
	case "csv":
		if *energy {
			energies := make([]float64, len(res.Contour.Points))
			for i, p := range res.Contour.Points {
				energies[i], err = ev.SupplyEnergy(p.TauS, p.TauH)
				if err != nil {
					return err
				}
			}
			return cli.WriteContourEnergyCSV(w, res.Contour.Points, energies)
		}
		return cli.WriteContourCSV(w, res.Contour.Points)
	case "json":
		return cli.WriteContourJSON(w, res.Contour.Points)
	case "lib":
		return liberty.Export(w, cell.Name, res.Contour, res.Calibration, liberty.Options{
			Stamp: time.Now(),
		})
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
