package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesContourCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contour.csv")
	err := run([]string{"-cell", "tspc", "-points", "8", "-both=false", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few CSV lines: %d", len(lines))
	}
	if lines[0] != "tau_s_ps,tau_h_ps,h_volts,corrector_iters" {
		t.Errorf("header: %q", lines[0])
	}
}

func TestRunJSONFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contour.json")
	err := run([]string{"-cell", "tspc", "-points", "5", "-both=false", "-format", "json", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"tau_s_ps\"") {
		t.Errorf("json output: %q", data[:60])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-cell", "nope"}); err == nil {
		t.Error("unknown cell accepted")
	}
	if err := run([]string{"-method", "rk4"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run([]string{"-format", "xml", "-points", "3", "-both=false"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunVetGateBlocksBrokenNetlist(t *testing.T) {
	deck := "../../internal/vet/testdata/broken_tspc.cir"
	err := run([]string{"-netlist", deck, "-points", "3", "-both=false", "-o", filepath.Join(t.TempDir(), "c.csv")})
	if err == nil || !strings.Contains(err.Error(), "vet:") {
		t.Errorf("vet gate did not block broken netlist: %v", err)
	}
}

func TestRunResample(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contour.csv")
	err := run([]string{"-cell", "tspc", "-points", "10", "-resample", "6", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 7 { // header + exactly 6 resampled points
		t.Fatalf("lines: %d, want 7", len(lines))
	}
}

func TestRunLibertyFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cell.lib")
	err := run([]string{"-cell", "tspc", "-points", "6", "-both=false", "-format", "lib", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"cell (tspc)", "timing_type : setup_rising;", "latchchar_interdependent_pairs"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunMonteCarloSigma(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sigma.csv")
	err := run([]string{"-cell", "tspc", "-points", "8", "-fast", "-mc", "3",
		"-sampler", "lhs", "-seed", "5", "-probes", "4", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 { // header + ≥2 covered probes
		t.Fatalf("too few sigma-contour lines: %d", len(lines))
	}

	lib := filepath.Join(t.TempDir(), "sigma.lib")
	err = run([]string{"-cell", "tspc", "-points", "8", "-fast", "-mc", "3",
		"-sampler", "lhs", "-seed", "5", "-probes", "4", "-format", "lib", "-o", lib})
	if err != nil {
		t.Fatal(err)
	}
	libData, err := os.ReadFile(lib)
	if err != nil {
		t.Fatal(err)
	}
	s := string(libData)
	for _, want := range []string{"cell (tspc)", "statistical corner: 3sigma", "latchchar_interdependent_pairs"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in sigma liberty output", want)
		}
	}
}

func TestRunMonteCarloRejectsNetlist(t *testing.T) {
	deck := "../../internal/vet/testdata/broken_tspc.cir"
	err := run([]string{"-netlist", deck, "-vet=false", "-mc", "2", "-points", "3"})
	if err == nil || !strings.Contains(err.Error(), "built-in cell") {
		t.Errorf("netlist + -mc not rejected: %v", err)
	}
}

func TestRunEnergyColumn(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contour.csv")
	err := run([]string{"-cell", "tspc", "-points", "4", "-both=false", "-energy", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasSuffix(lines[0], ",energy_fj") {
		t.Errorf("header: %q", lines[0])
	}
	if len(strings.Split(lines[1], ",")) != 5 {
		t.Errorf("row: %q", lines[1])
	}
}
