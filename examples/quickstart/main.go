// Quickstart: characterize the interdependent setup/hold times of the
// built-in TSPC register and print the constant clock-to-Q contour.
package main

import (
	"fmt"
	"log"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		log.Fatal(err)
	}

	res, err := latchchar.Characterize(cell, latchchar.Options{
		Points:         40,
		BothDirections: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	cal := res.Calibration
	fmt.Printf("characteristic clock-to-Q delay: %.1f ps\n", cal.CharDelay*1e12)
	fmt.Printf("measurement: output %.3f V at tf = %.4f ns (10%% degraded delay)\n", cal.R, cal.Tf*1e9)
	fmt.Printf("traced %d interdependent (setup, hold) pairs with %d transient simulations:\n\n",
		len(res.Contour.Points), res.TotalSims())

	fmt.Printf("%12s %12s %10s\n", "setup (ps)", "hold (ps)", "MPNR iters")
	for i, p := range res.Contour.Points {
		if i%4 != 0 && i != len(res.Contour.Points)-1 {
			continue // print every 4th point
		}
		fmt.Printf("%12.2f %12.2f %10d\n", p.TauS*1e12, p.TauH*1e12, p.CorrectorIters)
	}
}
