// Corner sweep: the industrial workload the paper's introduction motivates —
// characterize the interdependent setup/hold contour of one register across
// process/voltage corners. Corners run as one batch on the shared engine
// pool: the nominal corner traces cold and its contour warm-starts the rest.
package main

import (
	"fmt"
	"log"
	"time"

	"latchchar"
)

func main() {
	tm := latchchar.DefaultTiming()
	mk := func(p latchchar.Process) *latchchar.Cell {
		return latchchar.TSPCCell(p, tm)
	}
	start := time.Now()
	results := latchchar.SweepCorners(mk, latchchar.DefaultProcess(), latchchar.StandardCorners(),
		latchchar.Options{Points: 25, BothDirections: true})
	// One aggregate gate instead of checking each corner by hand.
	if err := results.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %14s %14s %14s %8s\n",
		"corner", "clk-to-Q (ps)", "min setup (ps)", "min hold (ps)", "sims")
	for _, r := range results {
		minS, _, err := r.Result.Contour.MinSetup()
		if err != nil {
			log.Fatal(err)
		}
		_, minH, err := r.Result.Contour.MinHold()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %14.1f %14.1f %14.1f %8d\n",
			r.Corner, r.Result.Calibration.CharDelay*1e12,
			minS*1e12, minH*1e12, r.Result.TotalSims())
	}
	fmt.Printf("\n%d corners in %v (concurrent)\n", len(results), time.Since(start).Round(time.Millisecond))
}
