// Custom netlist: characterize a user-supplied latch described in the
// SPICE-like deck format instead of a built-in cell. The deck here is a
// simple dynamic pass-transistor latch with an output buffer — two
// transistors more primitive than the TSPC register, but characterizable by
// exactly the same flow.
package main

import (
	"fmt"
	"log"

	"latchchar"
)

// A dynamic NMOS-pass master-slave register: the master pass device samples
// D onto a storage node while the clock is low (its gate is the
// complementary clock, written as a CLOCK source with swapped levels); at
// the rising edge the master closes and the slave pass device forwards the
// inverted sample to the output inverter. Q follows D one stage later, so
// with a falling data pulse the monitored transition falls (.rising 0).
const deck = `
* dynamic NMOS-pass master-slave latch
.model nch nmos VT0=0.43 KP=115u LAMBDA=0.06 COX=6m CJ=0.6n
.model pch pmos VT0=0.40 KP=30u  LAMBDA=0.10 COX=6m CJ=0.6n

Vdd   vdd  0 DC 2.5
Vclk  clk  0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vclkb clkb 0 CLOCK(2.5 0 10n 1n 0.1n 0.1n)   ; complementary clock
Vd    d    0 DATA(11.05n 2.5 0 0.1n 0.1n)

* master: pass device (on while clk is low) + storage + inverter
MPM  m  clkb d 0 nch W=0.8u L=0.25u
Cm   m  0 12f
MPI1 mb m vdd vdd pch W=1.4u L=0.25u
MNI1 mb m 0   0   nch W=0.6u L=0.25u

* slave: pass device (on while clk is high) + storage + output inverter
MPS  s  clk mb 0 nch W=0.8u L=0.25u
Cs   s  0 12f
MPI2 q  s vdd vdd pch W=1.4u L=0.25u
MNI2 q  s 0   0   nch W=0.6u L=0.25u
Cq   q  0 25f

.out q
.vdd 2.5
.crossfrac 0.5
.rising 0
`

func main() {
	d, err := latchchar.ParseNetlistString(deck)
	if err != nil {
		log.Fatal(err)
	}
	cell := d.Cell("dynamic-latch")

	res, err := latchchar.Characterize(cell, latchchar.Options{
		Points:         30,
		BothDirections: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell %s: characteristic clock-to-Q %.1f ps\n", cell.Name, res.Calibration.CharDelay*1e12)
	fmt.Printf("%12s %12s\n", "setup (ps)", "hold (ps)")
	for i, p := range res.Contour.Points {
		if i%4 == 0 || i == len(res.Contour.Points)-1 {
			fmt.Printf("%12.2f %12.2f\n", p.TauS*1e12, p.TauH*1e12)
		}
	}
	fmt.Printf("(%d points, %d simulations)\n", len(res.Contour.Points), res.TotalSims())
}
