// Pushout curves: the raw data behind the paper's Figs. 3(b) and 7(a).
// With one skew pinned, the measured clock-to-Q delay sits at its
// characteristic value for generous skews and "pushes out" sharply as the
// swept skew approaches the failure cliff; the setup/hold time is where the
// pushout crosses the 10% degradation line. The example prints both axes'
// curves for the TSPC register as small ASCII plots.
package main

import (
	"fmt"
	"log"
	"strings"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := latchchar.NewEvaluator(cell, latchchar.EvalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cal := ev.Calibration()
	fmt.Printf("characteristic clock-to-Q: %.1f ps; setup/hold defined at %.1f ps (+10%%)\n",
		cal.CharDelay*1e12, 1.1*cal.CharDelay*1e12)

	plot := func(title string, axisSetup bool, pinned, lo, hi float64) {
		pts, err := ev.PushoutCurve(axisSetup, pinned, lo, hi, 21)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", title)
		fmt.Printf("%10s %14s\n", "skew (ps)", "delay (ps)")
		for _, p := range pts {
			if !p.Latched {
				fmt.Printf("%10.0f %14s\n", p.Skew*1e12, "FAIL")
				continue
			}
			// Bar scaled between characteristic and +25%.
			frac := (p.Delay - cal.CharDelay) / (0.25 * cal.CharDelay)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			bar := strings.Repeat("#", int(frac*40))
			fmt.Printf("%10.0f %14.2f |%s\n", p.Skew*1e12, p.Delay*1e12, bar)
		}
	}
	plot("setup pushout (hold pinned at 500 ps):", true, 500e-12, 200e-12, 700e-12)
	plot("hold pushout (setup pinned at 500 ps):", false, 500e-12, 120e-12, 620e-12)
}
