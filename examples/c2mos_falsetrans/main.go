// C²MOS false transitions: reproduce Fig. 11(b) and Fig. 12(a). With the
// complementary clock delayed 0.3 ns, marginal hold skews let the output
// complete most of its transition and then revert to the wrong logic value,
// which is why the C²MOS characterization uses a 90% output criterion. The
// example prints an ASCII rendering of a successful and a failed transition,
// then traces the interdependent setup/hold contour.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("c2mos")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := latchchar.NewEvaluator(cell, latchchar.EvalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	inst := ev.Instance()
	tEnd := inst.Edge50 + 3e-9

	fmt.Println("output waveforms after the active clock edge (τs = 600 ps):")
	for _, tauH := range []float64{400e-12, 180e-12} {
		times, out, err := ev.OutputUntil(600e-12, tauH, tEnd)
		if err != nil {
			log.Fatal(err)
		}
		minV := math.Inf(1)
		for _, v := range out {
			minV = math.Min(minV, v)
		}
		final := out[len(out)-1]
		verdict := "successful transition"
		if final > inst.VDD/2 {
			verdict = fmt.Sprintf("FALSE transition (fell to %.2f V, reverted to %.2f V)", minV, final)
		}
		fmt.Printf("\nτh = %.0f ps — %s\n", tauH*1e12, verdict)
		sketch(times, out, inst.Edge50, inst.VDD)
	}

	res, err := latchchar.Characterize(cell, latchchar.Options{
		Points:         40,
		BothDirections: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC²MOS constant clock-to-Q contour (90%% criterion, 10%% degradation):\n")
	fmt.Printf("%12s %12s\n", "setup (ps)", "hold (ps)")
	for i, p := range res.Contour.Points {
		if i%5 == 0 || i == len(res.Contour.Points)-1 {
			fmt.Printf("%12.2f %12.2f\n", p.TauS*1e12, p.TauH*1e12)
		}
	}
	fmt.Printf("(%d points, %d simulations)\n", len(res.Contour.Points), res.TotalSims())
}

// sketch prints a small ASCII plot of the waveform after the clock edge.
func sketch(times, out []float64, edge, vdd float64) {
	const cols = 64
	tMax := times[len(times)-1]
	samples := make([]float64, cols)
	for c := 0; c < cols; c++ {
		target := edge + float64(c)/(cols-1)*(tMax-edge)
		// nearest sample
		best, bd := 0, math.Inf(1)
		for i, t := range times {
			if d := math.Abs(t - target); d < bd {
				best, bd = i, d
			}
		}
		samples[c] = out[best]
	}
	const rows = 8
	for r := rows - 1; r >= 0; r-- {
		lo := vdd * float64(r) / rows
		hi := vdd * float64(r+1) / rows
		var b strings.Builder
		for _, v := range samples {
			if v >= lo && v < hi {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("%5.2fV |%s\n", hi, b.String())
	}
	fmt.Printf("       +%s\n", strings.Repeat("-", cols))
	fmt.Printf("        clock edge %30s t = %.2f ns\n", "", tMax*1e9)
}
