// Surface comparison: reproduce the paper's validation overlay (Figs. 8–10)
// on the TSPC register. The Euler-Newton contour is traced directly, the
// brute-force output surface is generated on a grid, its iso-contour is
// extracted by marching squares, and the two curves are compared — along
// with the simulation-count cost of each method.
package main

import (
	"fmt"
	"log"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		log.Fatal(err)
	}

	// Euler-Newton contour (the paper's method).
	en, err := latchchar.Characterize(cell, latchchar.Options{
		Points:         40,
		BothDirections: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Euler-Newton: %d contour points, %d simulations, %v\n",
		len(en.Contour.Points), en.TotalSims(), en.Elapsed.Round(1e6))

	// Brute-force surface + marching-squares contour (prior practice).
	domain := latchchar.Rect{MinS: 100e-12, MaxS: 800e-12, MinH: 100e-12, MaxH: 800e-12}
	bf, err := latchchar.BruteForce(cell, latchchar.SurfaceOptions{N: 25, Domain: domain})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force:  %d×%d surface = %d simulations, %v (parallel)\n",
		len(bf.Surface.S), len(bf.Surface.H), bf.Sims, bf.Elapsed.Round(1e6))

	// Overlay (Fig. 10): restrict EN points to the surface domain and
	// measure the deviation.
	margin := (domain.MaxS - domain.MinS) / float64(24)
	inner := latchchar.Rect{
		MinS: domain.MinS + margin, MaxS: domain.MaxS - margin,
		MinH: domain.MinH + margin, MaxH: domain.MaxH - margin,
	}
	clipped := &latchchar.Contour{}
	for _, p := range en.Contour.Points {
		if inner.Contains(p.TauS, p.TauH) {
			clipped.Points = append(clipped.Points, p)
		}
	}
	max, mean, err := latchchar.CompareContours(clipped, bf.Contour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverlay: max deviation %.2f ps, mean %.2f ps (grid cell %.2f ps)\n",
		max*1e12, mean*1e12, margin*1e12)
	fmt.Printf("speedup (simulation count): %.1f×\n", float64(bf.Sims)/float64(en.TotalSims()))
	fmt.Printf("speedup (wall clock, surface parallelized): %.1f×\n",
		float64(bf.Elapsed)/float64(en.Elapsed))
}
