// Energy along the iso-delay contour: every point of the constant
// clock-to-Q curve gives the same timing, but not the same supply energy —
// the power-optimization degree of freedom the paper's introduction
// attributes to SHIA-STA ("this flexibility is expected to have significant
// impact on power optimization"). The example traces the TSPC contour,
// measures the energy drawn from VDD at a spread of contour points, and
// reports the cheapest timing-equivalent operating point.
package main

import (
	"fmt"
	"log"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := latchchar.NewEvaluator(cell, latchchar.EvalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := latchchar.CharacterizeWithEvaluator(ev, latchchar.Options{
		Points:         40,
		BothDirections: true,
		Resample:       9, // an even spread along the curve
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("energy drawn from VDD over the measurement window, along the")
	fmt.Println("constant clock-to-Q contour (all rows are timing-equivalent):")
	fmt.Println()
	fmt.Printf("%12s %12s %14s\n", "setup (ps)", "hold (ps)", "energy (fJ)")
	bestIdx, bestE := -1, 0.0
	for i, p := range res.Contour.Points {
		e, err := ev.SupplyEnergy(p.TauS, p.TauH)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.1f %12.1f %14.2f\n", p.TauS*1e12, p.TauH*1e12, e*1e15)
		if bestIdx < 0 || e < bestE {
			bestIdx, bestE = i, e
		}
	}
	b := res.Contour.Points[bestIdx]
	fmt.Printf("\ncheapest timing-equivalent point: (τs, τh) = (%.1f, %.1f) ps at %.2f fJ\n",
		b.TauS*1e12, b.TauH*1e12, bestE*1e15)
}
