// Independent characterization: the classic per-axis setup and hold times
// (Section IIIB), solved with the direct-Newton strategy and the
// industry-practice binary search, with cost comparison — the prior-work
// baseline of the paper (ref. [6]).
package main

import (
	"fmt"
	"log"

	"latchchar"
)

func main() {
	opts := latchchar.IndependentOptions{Tol: 0.05e-12}
	fmt.Printf("%-8s %-14s %12s %12s %8s\n", "cell", "method", "setup (ps)", "hold (ps)", "sims")
	for _, name := range []string{"tspc", "c2mos"} {
		cell, err := latchchar.CellByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sNR, hNR, err := latchchar.IndependentTimes(cell, latchchar.EvalConfig{}, opts)
		if err != nil {
			log.Fatal(err)
		}
		sBis, hBis, err := latchchar.IndependentBaseline(cell, latchchar.EvalConfig{}, opts)
		if err != nil {
			log.Fatal(err)
		}
		nrCost := sNR.PlainEvals + sNR.GradEvals + hNR.PlainEvals + hNR.GradEvals
		bisCost := sBis.PlainEvals + hBis.PlainEvals
		fmt.Printf("%-8s %-14s %12.2f %12.2f %8d\n", name, "direct Newton", sNR.Skew*1e12, hNR.Skew*1e12, nrCost)
		fmt.Printf("%-8s %-14s %12.2f %12.2f %8d\n", name, "binary search", sBis.Skew*1e12, hBis.Skew*1e12, bisCost)
		fmt.Printf("%-8s speedup %.1f×\n", "", float64(bisCost)/float64(nrCost))
	}
	fmt.Println("\nnote: these single numbers hide the tradeoff curve; see the")
	fmt.Println("quickstart example for the full interdependent contour.")
}
