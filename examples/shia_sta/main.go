// SHIA-STA slack trading: the use-case that motivates interdependent
// characterization (paper Section I). A path through the TSPC register
// violates its hold requirement; instead of changing the circuit, the
// timing flow walks along the constant clock-to-Q contour, trading
// non-critical setup slack for the missing hold margin.
package main

import (
	"fmt"
	"log"

	"latchchar"
)

func main() {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		log.Fatal(err)
	}
	res, err := latchchar.Characterize(cell, latchchar.Options{
		Points:         40,
		BothDirections: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	contour := res.Contour

	minS, _, err := contour.MinSetup()
	if err != nil {
		log.Fatal(err)
	}
	_, minH, err := contour.MinHold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contour extremes: setup asymptote %.1f ps, hold asymptote %.1f ps\n\n",
		minS*1e12, minH*1e12)

	// Scenario: the timing flow had signed off the pair sitting 35 ps above
	// the hold asymptote (the curved elbow region), and STA now finds a
	// short path whose hold slack is 20 ps negative there. Fixing it
	// conventionally means inserting delay buffers; SHIA-STA instead
	// re-reads the contour.
	tauH0 := minH + 35e-12
	tauS0, err := contour.SetupForHold(tauH0)
	if err != nil {
		log.Fatal(err)
	}
	const deficit = 20e-12
	fmt.Printf("hold violation: the path needs a hold time of %.1f ps (%.0f ps less than the signed-off %.1f ps)\n",
		(tauH0-deficit)*1e12, deficit*1e12, tauH0*1e12)

	newS, newH, err := contour.TradeHold(tauS0, tauH0, deficit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SHIA-STA trade along the contour:\n")
	fmt.Printf("  (τs, τh) = (%.1f, %.1f) ps  →  (%.1f, %.1f) ps\n",
		tauS0*1e12, tauH0*1e12, newS*1e12, newH*1e12)
	fmt.Printf("  hold requirement met by spending %.1f ps of setup slack —\n", (newS-tauS0)*1e12)
	fmt.Println("  same clock-to-Q delay, no circuit change, no buffer insertion.")

	fmt.Printf("\ncontour coverage: %d points, arc length %.1f ps, setup range %.1f ps\n",
		len(contour.Points), contour.ArcLength()*1e12, spanS(contour)*1e12)
}

func spanS(c *latchchar.Contour) float64 {
	min, max := c.Points[0].TauS, c.Points[0].TauS
	for _, p := range c.Points {
		if p.TauS < min {
			min = p.TauS
		}
		if p.TauS > max {
			max = p.TauS
		}
	}
	return max - min
}
