# Build, test and static-analysis entry points. CI runs `make ci`.

GO ?= go
# BENCHTIME scales the benchmark harness: 1x for smoke runs (the default),
# a duration like 2s for stable regression numbers.
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_core.json
# Pinned static-analysis tool versions: CI installs exactly these, so a
# toolchain release never changes what the gate enforces under your feet.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race vet lint latchlint vulncheck charvet tracesmoke batchsmoke servesmoke clustersmoke benchserve bench benchsmoke mcsmoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate: the race detector plus shuffled test order,
# so order-dependent state (write-once globals, cached singletons) cannot
# hide behind a fixed schedule.
race:
	$(GO) test -race -shuffle=on ./...

# vet runs Go's own static analysis plus charvet over every shipped
# characterization setup: the built-in cells and each example netlist.
vet: charvet
	$(GO) vet ./...

# lint is the full source-level gate: go vet, charvet over the shipped
# setups, the latchlint pass suite over the whole tree, and staticcheck when
# installed at the pinned version (environments without it skip with a
# notice instead of failing the build).
lint: vet latchlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# latchlint enforces the codebase's own invariants (ctxpair, obsspan,
# counterreg, optvalidate, nakedgoroutine, deprecated — see DESIGN.md §11).
latchlint:
	$(GO) run ./cmd/latchlint ./...

# vulncheck scans the module against the Go vulnerability database when
# govulncheck is installed; environments without it (or without network
# access) skip with a notice instead of failing the build.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

charvet:
	$(GO) run ./cmd/charvet -cell tspc
	$(GO) run ./cmd/charvet -cell c2mos
	$(GO) run ./cmd/charvet -cell tgate
	$(GO) run ./cmd/charvet examples/netlists/*.cir

# tracesmoke runs a reduced-grid characterization with event tracing on and
# validates the resulting JSONL stream with tracecheck (what CI does).
tracesmoke:
	$(GO) run ./cmd/latchchar -cell tspc -points 6 -both=false \
		-trace /tmp/latchchar-trace.jsonl -o /dev/null
	$(GO) run ./cmd/tracecheck /tmp/latchchar-trace.jsonl

# batchsmoke exercises the batch engine end to end on a reduced grid: a
# 4-corner warm-started sweep that must spend fewer seed transients than
# four cold characterizations (the warm-start acceptance test).
batchsmoke:
	$(GO) test -run TestBatchWarmStartFewerSims -v .

# servesmoke boots the latchchard daemon on a random port, characterizes the
# TSPC cell through the HTTP API, checks the metrics exposition (promtool-style
# lint), /statusz well-formedness and drains it via SIGTERM; a second boot
# with a tiny job timeout must leave a validating flight-recorder dump in
# SMOKE_DUMPDIR (CI uploads it as an artifact).
SMOKE_DUMPDIR ?= /tmp/latchchard-smoke-dumps
servesmoke:
	LATCHCHARD_SMOKE_DUMPDIR=$(SMOKE_DUMPDIR) $(GO) test -run TestServeSmoke -v ./cmd/latchchard

# clustersmoke boots two mock-mode workers plus a coordinator in one test
# process, pushes a few seconds of mixed load (hot cells, cold netlists,
# streamed jobs) through the public serveclient API, then checks fleet
# /statusz aggregation, metrics lint, the deprecated-alias 308 and a clean
# SIGTERM drain of all three daemons (DESIGN.md §15).
clustersmoke:
	$(GO) test -run TestClusterSmoke -v ./cmd/latchchard

# benchserve regenerates BENCH_serve.json: the serving-layer scaling curve
# (throughput and latency percentiles vs worker count) measured with
# cmd/latchload against mock-service-time workers. See the script header for
# methodology.
benchserve:
	./scripts/benchserve.sh

# bench runs the core benchmark set — root characterization contours,
# the transient inner loop and the sparse LU kernels — and converts the
# combined benchfmt stream into $(BENCHOUT) (benchjson JSON: ns/op plus the
# custom sims / sims/point / factorizations metrics). Benchmark names carry
# mode= (exact / fast / blockK) and p= (concurrency) components so the
# comparison only diffs like-for-like; the mode=fast vs mode=block8
# sub-benchmarks of BenchmarkEulerNewton*, BenchmarkSurfaceTSPC and
# BenchmarkMonteCarloTSPC carry the chord/bypass and block-transient
# regression numbers. Use BENCHTIME=2s for stable wall-clock comparisons.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) \
		. ./internal/transient ./internal/sparse | tee bench.out.txt
	$(GO) run ./cmd/benchjson -o $(BENCHOUT) bench.out.txt
	@rm -f bench.out.txt

# benchsmoke is the CI gate: a 1x pass over the same set, requiring the
# harness to run end to end and the fast-path sub-benchmarks to be present in
# the JSON, then diffed against the committed BENCH_core.json baseline.
# The diff gates at a wide 50% tolerance — a single-iteration smoke run is
# noisy, but a 2x wall-clock blowup on a macro benchmark is a real
# regression, not noise. Two escape hatches keep the gate honest: -min-ns
# downgrades slowdowns on sub-50ms kernels a 1x pass cannot measure, and
# -warn-match gives freshly landed Monte-Carlo benchmarks a grace period
# until their baselines stabilize. Use `make bench BENCHTIME=2s` locally
# plus `benchjson -compare` at a tight tolerance for a precise check.
SMOKE_BENCHOUT ?= /tmp/bench-smoke.json
benchsmoke:
	$(MAKE) bench BENCHTIME=1x BENCHOUT=$(SMOKE_BENCHOUT)
	@grep -q 'BenchmarkEulerNewtonTSPC/mode=fast' $(SMOKE_BENCHOUT) || \
		{ echo "benchsmoke: fast-path benchmark missing from $(SMOKE_BENCHOUT)"; exit 1; }
	@grep -q 'mode=block8' $(SMOKE_BENCHOUT) || \
		{ echo "benchsmoke: block-transient benchmark missing from $(SMOKE_BENCHOUT)"; exit 1; }
	$(GO) run ./cmd/benchjson -compare -warn-match 'MonteCarlo' -min-ns 5e7 \
		-tolerance 50 BENCH_core.json $(SMOKE_BENCHOUT)

# mcsmoke runs a reduced variance-aware Monte-Carlo characterization through
# the CLI — quasi-MC sampling, nominal-contour warm starts, sigma-band CSV —
# with event tracing on, and validates the trace stream with tracecheck.
mcsmoke:
	$(GO) run ./cmd/latchchar -cell tspc -points 8 -fast -mc 3 \
		-sampler lhs -seed 5 -probes 4 \
		-trace /tmp/latchchar-mc-trace.jsonl -o /dev/null
	$(GO) run ./cmd/tracecheck /tmp/latchchar-mc-trace.jsonl

ci: build lint vulncheck race tracesmoke batchsmoke servesmoke clustersmoke mcsmoke benchsmoke

clean:
	$(GO) clean ./...
