# Build, test and static-analysis entry points. CI runs `make ci`.

GO ?= go

.PHONY: all build test race vet charvet tracesmoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs Go's own static analysis plus charvet over every shipped
# characterization setup: the built-in cells and each example netlist.
vet: charvet
	$(GO) vet ./...

charvet:
	$(GO) run ./cmd/charvet -cell tspc
	$(GO) run ./cmd/charvet -cell c2mos
	$(GO) run ./cmd/charvet -cell tgate
	$(GO) run ./cmd/charvet examples/netlists/*.cir

# tracesmoke runs a reduced-grid characterization with event tracing on and
# validates the resulting JSONL stream with tracecheck (what CI does).
tracesmoke:
	$(GO) run ./cmd/latchchar -cell tspc -points 6 -both=false \
		-trace /tmp/latchchar-trace.jsonl -o /dev/null
	$(GO) run ./cmd/tracecheck /tmp/latchchar-trace.jsonl

ci: build vet race tracesmoke

clean:
	$(GO) clean ./...
