# Build, test and static-analysis entry points. CI runs `make ci`.

GO ?= go

.PHONY: all build test race vet charvet ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs Go's own static analysis plus charvet over every shipped
# characterization setup: the built-in cells and each example netlist.
vet: charvet
	$(GO) vet ./...

charvet:
	$(GO) run ./cmd/charvet -cell tspc
	$(GO) run ./cmd/charvet -cell c2mos
	$(GO) run ./cmd/charvet -cell tgate
	$(GO) run ./cmd/charvet examples/netlists/*.cir

ci: build vet race

clean:
	$(GO) clean ./...
