package latchchar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"latchchar/internal/obs"
)

// MCOptions configure Monte-Carlo statistical characterization — the
// paper's second motivating workload besides PVT corners ("for all
// process-voltage-temperature corners or statistical process samples").
type MCOptions struct {
	// Samples is the number of process draws (default 8).
	Samples int
	// Seed makes the draw deterministic.
	Seed int64
	// SigmaVT and SigmaKP are the relative 1σ variations applied to the
	// threshold voltages and transconductances (defaults 3% and 5%).
	SigmaVT, SigmaKP float64
	// Workers bounds concurrency (default: all samples at once).
	Workers int
	// Characterize configures each sample's characterization.
	Characterize Options
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Samples <= 0 {
		o.Samples = 8
	}
	if o.SigmaVT <= 0 {
		o.SigmaVT = 0.03
	}
	if o.SigmaKP <= 0 {
		o.SigmaKP = 0.05
	}
	if o.Workers <= 0 {
		o.Workers = o.Samples
	}
	return o
}

// MCSample is one Monte-Carlo draw's outcome.
type MCSample struct {
	// Index is the sample number; Process the drawn parameters.
	Index   int
	Process Process
	Result  *Result
	Err     error
}

// MCStats summarizes a statistic over the samples.
type MCStats struct {
	Mean, Std, Min, Max float64
}

// MonteCarlo characterizes the register across randomized process samples.
// mk builds the cell for a given process. Samples run concurrently on
// independent circuits; results are returned in sample order.
func MonteCarlo(mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	// Draw all processes up front so the sequence depends only on Seed,
	// not on goroutine scheduling.
	samples := make([]MCSample, o.Samples)
	for i := range samples {
		p := nominal
		p.NMOS.VT0 *= 1 + o.SigmaVT*rng.NormFloat64()
		p.PMOS.VT0 *= 1 + o.SigmaVT*rng.NormFloat64()
		p.NMOS.KP *= 1 + o.SigmaKP*rng.NormFloat64()
		p.PMOS.KP *= 1 + o.SigmaKP*rng.NormFloat64()
		samples[i] = MCSample{Index: i, Process: p}
	}
	sem := make(chan struct{}, o.Workers)
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := range samples {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := &samples[i]
			if err := s.Process.NMOS.Validate(); err != nil {
				s.Err = fmt.Errorf("latchchar: sample %d: %w", i, err)
				return
			}
			if err := s.Process.PMOS.Validate(); err != nil {
				s.Err = fmt.Errorf("latchchar: sample %d: %w", i, err)
				return
			}
			run := o.Characterize.Obs
			sp := run.StartSpan(obs.SpanMCSample)
			if sp.Enabled() {
				sp.Logf("sample %d", i)
			}
			copts := o.Characterize
			copts.Obs = sp
			s.Result, s.Err = Characterize(mk(s.Process), copts)
			sp.End()
			run.Progress(obs.Progress{
				Phase: obs.SpanMCSample,
				Done:  int(done.Add(1)), Total: len(samples),
			})
		}(i)
	}
	wg.Wait()
	return samples
}

// SummarizeMC reduces the samples with the given per-sample statistic
// (e.g. minimum setup time). Failed samples are skipped; err reports if
// every sample failed.
func SummarizeMC(samples []MCSample, stat func(*Result) float64) (MCStats, error) {
	var vals []float64
	for _, s := range samples {
		if s.Err == nil && s.Result != nil {
			vals = append(vals, stat(s.Result))
		}
	}
	if len(vals) == 0 {
		return MCStats{}, fmt.Errorf("latchchar: no successful Monte-Carlo samples")
	}
	sort.Float64s(vals)
	st := MCStats{Min: vals[0], Max: vals[len(vals)-1]}
	for _, v := range vals {
		st.Mean += v
	}
	st.Mean /= float64(len(vals))
	for _, v := range vals {
		st.Std += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(st.Std / float64(len(vals)))
	return st, nil
}
