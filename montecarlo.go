package latchchar

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"latchchar/internal/num"
	"latchchar/internal/num/sample"
	"latchchar/internal/obs"
)

// Sampler names a process-sampling scheme for Monte-Carlo characterization.
type Sampler string

// The supported samplers. The quasi-Monte-Carlo designs (Latin hypercube,
// scrambled Sobol) cut the 1/√N error scaling of independent draws on the
// smooth low-dimensional process-to-contour map, so a given band accuracy
// needs fewer characterized samples.
const (
	// SamplerIID draws independent pseudo-random samples (the default; the
	// empty string selects it too).
	SamplerIID Sampler = "iid"
	// SamplerLHS draws a Latin-hypercube design: exact per-axis
	// stratification over the sample count.
	SamplerLHS Sampler = "lhs"
	// SamplerSobol draws an Owen-scrambled Sobol sequence: a digital net
	// whose prefixes fill the process space with low discrepancy.
	SamplerSobol Sampler = "sobol"
)

// mcAxes is the dimensionality of the process sample space: relative
// perturbations of NMOS/PMOS threshold voltage and transconductance.
const mcAxes = 4

// MCOptions configure Monte-Carlo statistical characterization — the
// paper's second motivating workload besides PVT corners ("for all
// process-voltage-temperature corners or statistical process samples").
type MCOptions struct {
	// Samples is the number of process draws (default 8).
	Samples int
	// Seed makes the draw deterministic: the sample set is a pure function
	// of (Seed, Sampler, Samples, SigmaVT, SigmaKP) — bitwise identical at
	// any Parallelism, because samples are index-addressed rather than drawn
	// from a shared stream.
	Seed int64
	// Sampler selects the sampling scheme: SamplerIID (default, also the
	// empty string), SamplerLHS or SamplerSobol.
	Sampler Sampler
	// SigmaVT and SigmaKP are the relative 1σ variations applied to the
	// threshold voltages and transconductances (defaults 3% and 5%).
	SigmaVT, SigmaKP float64
	// SigmaLevel is the percentile band half-width, in sample standard
	// deviations, of the SigmaContours estimate (default 3 — the 3σ inner
	// and outer contours).
	SigmaLevel float64
	// Probes is the number of arc-length-uniform probe points at which the
	// variance-aware flow measures each sample's contour against nominal
	// (default 12). More probes resolve the band's shape; each costs about
	// one corrector solve per sample.
	Probes int
	// Parallelism caps how many samples run at once (default: the engine
	// pool's worker bound — previously every sample ran at once, which on a
	// library-scale sample count oversubscribed the machine).
	Parallelism int
	// Characterize configures each sample's characterization.
	Characterize Options
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Samples <= 0 {
		o.Samples = 8
	}
	if o.Sampler == "" {
		o.Sampler = SamplerIID
	}
	if o.SigmaVT <= 0 {
		o.SigmaVT = 0.03
	}
	if o.SigmaKP <= 0 {
		o.SigmaKP = 0.05
	}
	if o.SigmaLevel <= 0 {
		o.SigmaLevel = 3
	}
	if o.Probes <= 0 {
		o.Probes = 12
	}
	return o
}

// sampleSource builds the unit-hypercube source for defaulted options.
func (o MCOptions) sampleSource() (sample.Source, error) {
	switch o.Sampler {
	case "", SamplerIID:
		return sample.NewIID(o.Seed, mcAxes)
	case SamplerLHS:
		return sample.NewLHS(o.Seed, mcAxes, o.Samples)
	case SamplerSobol:
		return sample.NewSobol(o.Seed, mcAxes)
	}
	return nil, optErr("Sampler", o.Sampler, `must be "iid", "lhs" or "sobol" ("" selects iid)`)
}

// drawProcesses realizes the process sample set: source point i in [0,1)⁴ is
// mapped through the inverse normal CDF (preserving quasi-MC stratification)
// onto relative VT0/KP perturbations around nominal.
func drawProcesses(nominal Process, o MCOptions) ([]Process, error) {
	src, err := o.sampleSource()
	if err != nil {
		return nil, err
	}
	procs := make([]Process, o.Samples)
	u := make([]float64, mcAxes)
	for i := range procs {
		src.At(i, u)
		p := nominal
		p.NMOS.VT0 *= 1 + o.SigmaVT*sample.Normal(u[0])
		p.PMOS.VT0 *= 1 + o.SigmaVT*sample.Normal(u[1])
		p.NMOS.KP *= 1 + o.SigmaKP*sample.Normal(u[2])
		p.PMOS.KP *= 1 + o.SigmaKP*sample.Normal(u[3])
		procs[i] = p
	}
	return procs, nil
}

// MCDraws returns the process sample set a Monte-Carlo run with these
// options would characterize, without running any simulations. The set is a
// pure function of (Seed, Sampler, Samples, SigmaVT, SigmaKP): callers can
// rely on bitwise-identical draws across Parallelism values, machines and
// releases of the sampling schemes.
func MCDraws(nominal Process, opts MCOptions) ([]Process, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return drawProcesses(nominal, opts.withDefaults())
}

// MCSample is one Monte-Carlo draw's outcome.
type MCSample struct {
	// Index is the sample number; Process the drawn parameters.
	Index   int
	Process Process
	Result  *Result
	Err     error
	// WarmStarted reports the sample was solved by polishing the nominal
	// contour's probe points (the variance-aware path) instead of a full
	// cold characterization.
	WarmStarted bool
}

// MCStats summarizes a statistic over the samples.
type MCStats struct {
	Mean, Std, Min, Max float64
}

// MonteCarlo is MonteCarloCtx with context.Background().
func MonteCarlo(mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	return MonteCarloCtx(context.Background(), mk, nominal, opts)
}

// MonteCarloCtx characterizes the register across randomized process
// samples on the shared DefaultEngine. mk builds the cell for a given
// process; samples run concurrently on independent circuits and results
// are returned in sample order. Samples draw from the engine's bounded pool
// (the v1 default of Workers = Samples is gone), the first sample's traced
// contour warm-starts the rest, and cancellation stops in-flight traces
// mid-transient. The draw sequence depends only on Seed and Sampler; see
// MCDraws.
func MonteCarloCtx(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	return DefaultEngine().MonteCarlo(ctx, mk, nominal, opts)
}

// MonteCarlo runs the statistical sweep on this engine; see MonteCarloCtx.
// Invalid MCOptions yield a single sample carrying the *OptionError.
// Every sample is fully re-characterized; MonteCarloContours is the
// variance-aware sibling that solves samples from the nominal contour.
func (e *Engine) MonteCarlo(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	if err := opts.Validate(); err != nil {
		return []MCSample{{Err: err}}
	}
	o := opts.withDefaults()
	procs, err := drawProcesses(nominal, o)
	if err != nil {
		return []MCSample{{Err: err}}
	}
	samples := make([]MCSample, o.Samples)
	jobs := make([]Job, len(samples))
	pre := make([]error, len(samples))
	for i := range samples {
		samples[i] = MCSample{Index: i, Process: procs[i]}
		s := &samples[i]
		if err := s.Process.NMOS.Validate(); err != nil {
			pre[i] = fmt.Errorf("latchchar: sample %d: %w", i, err)
			continue
		}
		if err := s.Process.PMOS.Validate(); err != nil {
			pre[i] = fmt.Errorf("latchchar: sample %d: %w", i, err)
			continue
		}
		jobs[i] = Job{Name: fmt.Sprintf("%d", i), Cell: mk(s.Process), Opts: o.Characterize}
	}
	limit := o.Parallelism
	res := e.characterizeBatch(ctx, jobs, batchConfig{
		span: obs.SpanMCSample, phase: obs.SpanMCSample, limit: limit,
	})
	for i := range samples {
		samples[i].Result, samples[i].Err = res[i].Result, res[i].Err
		if pre[i] != nil {
			samples[i].Err = pre[i]
		}
	}
	return samples
}

// ErrNoSamples is the sentinel SummarizeMC and the sigma-contour estimator
// wrap when no usable sample values remain (every sample failed, or every
// value was non-finite); test with errors.Is.
var ErrNoSamples = errors.New("latchchar: no usable Monte-Carlo samples")

// SummarizeMC reduces the samples with the given per-sample statistic
// (e.g. minimum setup time). Failed samples and non-finite statistic values
// are skipped; an empty remainder yields an error wrapping ErrNoSamples.
func SummarizeMC(samples []MCSample, stat func(*Result) float64) (MCStats, error) {
	var vals []float64
	for _, s := range samples {
		if s.Err == nil && s.Result != nil {
			if v := stat(s.Result); num.IsFinite(v) {
				vals = append(vals, v)
			}
		}
	}
	return statsOf(vals)
}

// statsOf reduces finite values to MCStats; empty input errors.
func statsOf(vals []float64) (MCStats, error) {
	if len(vals) == 0 {
		return MCStats{}, fmt.Errorf("latchchar: summarize: %w", ErrNoSamples)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	st := MCStats{Min: sorted[0], Max: sorted[len(sorted)-1]}
	for _, v := range sorted {
		st.Mean += v
	}
	st.Mean /= float64(len(sorted))
	for _, v := range sorted {
		st.Std += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(st.Std / float64(len(sorted)))
	return st, nil
}
