package latchchar

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"latchchar/internal/obs"
)

// MCOptions configure Monte-Carlo statistical characterization — the
// paper's second motivating workload besides PVT corners ("for all
// process-voltage-temperature corners or statistical process samples").
type MCOptions struct {
	// Samples is the number of process draws (default 8).
	Samples int
	// Seed makes the draw deterministic.
	Seed int64
	// SigmaVT and SigmaKP are the relative 1σ variations applied to the
	// threshold voltages and transconductances (defaults 3% and 5%).
	SigmaVT, SigmaKP float64
	// Parallelism caps how many samples run at once (default: the engine
	// pool's worker bound — previously every sample ran at once, which on a
	// library-scale sample count oversubscribed the machine).
	Parallelism int
	// Characterize configures each sample's characterization.
	Characterize Options
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Samples <= 0 {
		o.Samples = 8
	}
	if o.SigmaVT <= 0 {
		o.SigmaVT = 0.03
	}
	if o.SigmaKP <= 0 {
		o.SigmaKP = 0.05
	}
	return o
}

// MCSample is one Monte-Carlo draw's outcome.
type MCSample struct {
	// Index is the sample number; Process the drawn parameters.
	Index   int
	Process Process
	Result  *Result
	Err     error
}

// MCStats summarizes a statistic over the samples.
type MCStats struct {
	Mean, Std, Min, Max float64
}

// MonteCarlo is MonteCarloCtx with context.Background().
func MonteCarlo(mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	return MonteCarloCtx(context.Background(), mk, nominal, opts)
}

// MonteCarloCtx characterizes the register across randomized process
// samples on the shared DefaultEngine. mk builds the cell for a given
// process; samples run concurrently on independent circuits and results
// are returned in sample order. Samples draw from the engine's bounded pool
// (the v1 default of Workers = Samples is gone), the first sample's traced
// contour warm-starts the rest, and cancellation stops in-flight traces
// mid-transient. The draw sequence depends only on Seed.
func MonteCarloCtx(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	return DefaultEngine().MonteCarlo(ctx, mk, nominal, opts)
}

// MonteCarlo runs the statistical sweep on this engine; see MonteCarloCtx.
// Invalid MCOptions yield a single sample carrying the *OptionError.
func (e *Engine) MonteCarlo(ctx context.Context, mk func(Process) *Cell, nominal Process, opts MCOptions) []MCSample {
	if err := opts.Validate(); err != nil {
		return []MCSample{{Err: err}}
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	// Draw all processes up front so the sequence depends only on Seed,
	// not on goroutine scheduling.
	samples := make([]MCSample, o.Samples)
	for i := range samples {
		p := nominal
		p.NMOS.VT0 *= 1 + o.SigmaVT*rng.NormFloat64()
		p.PMOS.VT0 *= 1 + o.SigmaVT*rng.NormFloat64()
		p.NMOS.KP *= 1 + o.SigmaKP*rng.NormFloat64()
		p.PMOS.KP *= 1 + o.SigmaKP*rng.NormFloat64()
		samples[i] = MCSample{Index: i, Process: p}
	}
	jobs := make([]Job, len(samples))
	pre := make([]error, len(samples))
	for i := range samples {
		s := &samples[i]
		if err := s.Process.NMOS.Validate(); err != nil {
			pre[i] = fmt.Errorf("latchchar: sample %d: %w", i, err)
			continue
		}
		if err := s.Process.PMOS.Validate(); err != nil {
			pre[i] = fmt.Errorf("latchchar: sample %d: %w", i, err)
			continue
		}
		jobs[i] = Job{Name: fmt.Sprintf("%d", i), Cell: mk(s.Process), Opts: o.Characterize}
	}
	limit := o.Parallelism
	res := e.characterizeBatch(ctx, jobs, batchConfig{
		span: obs.SpanMCSample, phase: obs.SpanMCSample, limit: limit,
	})
	for i := range samples {
		samples[i].Result, samples[i].Err = res[i].Result, res[i].Err
		if pre[i] != nil {
			samples[i].Err = pre[i]
		}
	}
	return samples
}

// SummarizeMC reduces the samples with the given per-sample statistic
// (e.g. minimum setup time). Failed samples are skipped; err reports if
// every sample failed.
func SummarizeMC(samples []MCSample, stat func(*Result) float64) (MCStats, error) {
	var vals []float64
	for _, s := range samples {
		if s.Err == nil && s.Result != nil {
			vals = append(vals, stat(s.Result))
		}
	}
	if len(vals) == 0 {
		return MCStats{}, fmt.Errorf("latchchar: no successful Monte-Carlo samples")
	}
	sort.Float64s(vals)
	st := MCStats{Min: vals[0], Max: vals[len(vals)-1]}
	for _, v := range vals {
		st.Mean += v
	}
	st.Mean /= float64(len(vals))
	for _, v := range vals {
		st.Std += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(st.Std / float64(len(vals)))
	return st, nil
}
