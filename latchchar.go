// Package latchchar is an interdependent latch setup/hold time
// characterization library, reproducing "Interdependent Latch Setup/Hold
// Time Characterization via Euler-Newton Curve Tracing on State-Transition
// Equations" (Srivastava & Roychowdhury, DAC 2007).
//
// The library formulates the constant clock-to-Q contour of a register as
// the solution set of the underdetermined scalar equation
//
//	h(τs, τh) = cᵀφ(tf; x0, 0, τs, τh) − r = 0
//
// where φ is the state-transition function of the register's circuit
// equations, and traces the contour directly with a Moore-Penrose Newton
// corrector inside an Euler predictor-corrector continuation — computing a
// full interdependent setup/hold tradeoff curve in O(n) transient
// simulations instead of the O(n²) of brute-force surface generation.
//
// The simplest entry point characterizes a built-in register cell:
//
//	cell, _ := latchchar.CellByName("tspc")
//	res, err := latchchar.Characterize(cell, latchchar.Options{Points: 40})
//	for _, p := range res.Contour.Points {
//		fmt.Printf("τs=%.1fps τh=%.1fps\n", p.TauS*1e12, p.TauH*1e12)
//	}
//
// The underlying pieces — the circuit simulator, the state-transition
// evaluator, the MPNR/Euler-Newton solvers and the brute-force baseline —
// are exposed through the type aliases below for programs that need finer
// control.
package latchchar

import (
	"fmt"
	"runtime"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/obs"
	"latchchar/internal/registers"
	"latchchar/internal/stf"
	"latchchar/internal/surface"
	"latchchar/internal/transient"
	"latchchar/internal/wave"
)

// Re-exported building blocks. The aliases give external users access to
// the full type surface without reaching into internal packages.
type (
	// Cell is a register type with its standard characterization stimulus.
	Cell = registers.Cell
	// Instance is one built register circuit.
	Instance = registers.Instance
	// Process holds device/technology parameters for the built-in cells.
	Process = registers.Process
	// Timing holds the clock/data timing for the built-in cells.
	Timing = registers.Timing
	// Contour is a traced constant clock-to-Q curve.
	Contour = core.Contour
	// ContourPoint is one solved point on the contour.
	ContourPoint = core.Point
	// Rect bounds a skew domain.
	Rect = core.Rect
	// Calibration holds the measured characteristic timing (tc, tf, r).
	Calibration = stf.Calibration
	// Evaluator computes h(τs, τh) and its gradient for an instance.
	Evaluator = stf.Evaluator
	// EvalConfig tunes the state-transition evaluator.
	EvalConfig = stf.Config
	// TraceOptions tunes the Euler-Newton tracer.
	TraceOptions = core.TraceOptions
	// MPNROptions tunes the Moore-Penrose Newton corrector.
	MPNROptions = core.MPNROptions
	// SeedOptions tunes the first-point bracketing search.
	SeedOptions = core.SeedOptions
	// Surface is a sampled output surface over the skew plane.
	Surface = surface.Surface
	// Polyline is an extracted iso-contour chain.
	Polyline = surface.Polyline
	// Problem is the abstract h(τs, τh) = 0 interface the solvers accept.
	Problem = core.Problem
)

// Method re-exports the integration schemes.
const (
	BE   = transient.BE
	TRAP = transient.TRAP
)

// Data-ramp profiles for Timing.DataShape.
const (
	// RampSmooth is the C¹ smoothstep profile (default).
	RampSmooth = wave.RampSmooth
	// RampLinear is the piecewise-linear SPICE PULSE-style profile.
	RampLinear = wave.RampLinear
)

// CellByName returns a built-in register cell ("tspc", "c2mos" or "tgate")
// with default process and timing.
func CellByName(name string) (*Cell, error) { return registers.ByName(name) }

// DefaultProcess returns the default technology parameters.
func DefaultProcess() Process { return registers.DefaultProcess() }

// DefaultTiming returns the paper's clock/data timing.
func DefaultTiming() Timing { return registers.DefaultTiming() }

// TSPCCell builds a TSPC cell with explicit parameters.
func TSPCCell(p Process, tm Timing) *Cell { return registers.TSPC(p, tm) }

// C2MOSCell builds a C²MOS cell with explicit parameters and clk̄ delay.
func C2MOSCell(p Process, tm Timing, clkbDelay float64) *Cell {
	return registers.C2MOS(p, tm, registers.C2MOSOptions{ClkbDelay: clkbDelay})
}

// TGateCell builds the transmission-gate example cell.
func TGateCell(p Process, tm Timing) *Cell { return registers.TGate(p, tm) }

// Options configure a full characterization run.
type Options struct {
	// Points is the number of contour points to trace per direction
	// (default 40, the paper's validation count).
	Points int
	// Step is the Euler step length α (default 5 ps).
	Step float64
	// Bounds stops tracing outside this skew rectangle. The zero Rect
	// enables a default domain derived from Eval.MaxSetupSkew.
	Bounds Rect
	// BothDirections traces the curve both ways from the seed.
	BothDirections bool
	// Eval tunes the underlying transient evaluator.
	Eval EvalConfig
	// Seed tunes the first-point search.
	Seed SeedOptions
	// MPNR tunes the corrector.
	MPNR MPNROptions
	// RecordSteps keeps the predictor/corrector history in the result.
	RecordSteps bool
	// Resample, when ≥ 2, redistributes the traced contour into exactly
	// that many arc-length-uniform points, each polished back onto the
	// curve with MPNR.
	Resample int
	// Obs attaches observability: spans, counters, histograms and live
	// progress flow to the run's sinks. nil disables collection with no
	// hot-path cost.
	Obs *ObsRun
}

// Result is the outcome of Characterize.
type Result struct {
	// Contour is the traced constant clock-to-Q curve.
	Contour *Contour
	// Calibration is the measured characteristic timing.
	Calibration Calibration
	// Seed is the first point handed to the tracer.
	Seed ContourPoint
	// PlainSims and GradSims count transient simulations by kind
	// (calibration excluded; it is a fixed +1 for any method).
	PlainSims, GradSims int
	// Stats aggregates integrator-level work (steps, Newton iterations, LU
	// factorizations, wall-clock attribution) over the whole run.
	Stats transient.Stats
	// Elapsed is the wall-clock characterization time.
	Elapsed time.Duration
}

// TotalSims returns the total transient count, the paper's cost metric.
func (r *Result) TotalSims() int { return r.PlainSims + r.GradSims }

// Characterize runs the complete Euler-Newton flow of the paper on a fresh
// instance of the cell: calibrate, bracket a seed at large hold skew,
// correct it with MPNR, and trace the constant clock-to-Q contour.
func Characterize(cell *Cell, opts Options) (*Result, error) {
	inst, err := cell.Build()
	if err != nil {
		return nil, fmt.Errorf("latchchar: build %s: %w", cell.Name, err)
	}
	ev, err := stf.NewEvaluator(inst, opts.Eval)
	if err != nil {
		return nil, fmt.Errorf("latchchar: evaluator: %w", err)
	}
	return characterize(ev, opts)
}

// CharacterizeWithEvaluator runs the flow on an existing evaluator
// (e.g. to reuse one across parameter sweeps).
func CharacterizeWithEvaluator(ev *Evaluator, opts Options) (*Result, error) {
	return characterize(ev, opts)
}

func characterize(ev *Evaluator, opts Options) (*Result, error) {
	start := time.Now()
	ev.ResetCounters()
	sp := opts.Obs.StartSpan(obs.SpanCharacterize)
	ev.SetObs(sp)
	defer func() {
		ev.SetObs(opts.Obs)
		sp.End()
	}()
	cfg := opts.Eval
	maxS := cfg.MaxSetupSkew
	if maxS <= 0 {
		maxS = 1.0e-9 // stf default
	}
	seedOpts := opts.Seed
	if seedOpts.Hi <= 0 || seedOpts.Hi > maxS {
		seedOpts.Hi = 0.8 * maxS
	}
	seedOpts.Obs = sp
	seed, err := core.FindSeed(ev, seedOpts)
	if err != nil {
		return nil, fmt.Errorf("latchchar: seeding: %w", err)
	}
	bounds := opts.Bounds
	if (bounds == Rect{}) {
		bounds = Rect{MinS: 1e-12, MaxS: maxS, MinH: 1e-12, MaxH: maxS}
	}
	traceOpts := TraceOptions{
		Step:           opts.Step,
		MaxPoints:      opts.Points,
		Bounds:         bounds,
		BothDirections: opts.BothDirections,
		MPNR:           opts.MPNR,
		RecordSteps:    opts.RecordSteps,
		Obs:            sp,
	}
	ct, err := core.TraceContour(ev, seed.TauS, seed.TauH, traceOpts)
	if err != nil {
		return nil, fmt.Errorf("latchchar: tracing: %w", err)
	}
	if opts.Resample >= 2 {
		resampleOpts := opts.MPNR
		resampleOpts.Obs = sp
		ct, err = core.ResampleContour(ev, ct, opts.Resample, resampleOpts)
		if err != nil {
			return nil, fmt.Errorf("latchchar: resampling: %w", err)
		}
	}
	res := &Result{
		Contour:     ct,
		Calibration: ev.Calibration(),
		PlainSims:   ev.PlainEvals,
		GradSims:    ev.GradEvals,
		Stats:       ev.Work,
		Elapsed:     time.Since(start),
	}
	if len(ct.Points) > 0 {
		res.Seed = ct.Points[0]
	}
	return res, nil
}

// SurfaceOptions configure brute-force surface generation.
type SurfaceOptions struct {
	// N is the grid resolution per axis (default 40, i.e. the paper's
	// 40×40 = 1600 simulations).
	N int
	// Domain is the swept skew rectangle (default [10 ps, 0.8 ns]²).
	Domain Rect
	// Workers bounds the concurrency (default GOMAXPROCS). The paper's
	// cost comparison counts simulations, which is independent of Workers.
	Workers int
	// Eval tunes the per-worker evaluators.
	Eval EvalConfig
	// Obs attaches observability: the sweep runs inside a "surface" span
	// with per-row progress; worker transients are counted. nil disables
	// collection.
	Obs *ObsRun
}

// SurfaceResult is the outcome of BruteForce.
type SurfaceResult struct {
	// Surface holds h(τs, τh) samples (add Calibration.R for the raw
	// output-voltage surface of Figs. 1(a) and 9).
	Surface *Surface
	// Contour is the marching-squares extraction of h = 0 — the
	// interdependent setup/hold pairs of the brute-force method.
	Contour []Polyline
	// Calibration is the shared characteristic timing.
	Calibration Calibration
	// Sims is the number of grid transient simulations (N²).
	Sims int
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
}

// BruteForce reproduces the prior-practice baseline: sample the output
// surface on an N×N grid of trial skews and extract the constant clock-to-Q
// contour by interpolation.
func BruteForce(cell *Cell, opts SurfaceOptions) (*SurfaceResult, error) {
	if opts.N <= 0 {
		opts.N = 40
	}
	if (opts.Domain == Rect{}) {
		opts.Domain = Rect{MinS: 10e-12, MaxS: 0.8e-9, MinH: 10e-12, MaxH: 0.8e-9}
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	sp := opts.Obs.StartSpan(obs.SpanSurface)
	defer sp.End()
	// Calibrate once on a reference instance; workers reuse the numbers.
	refInst, err := cell.Build()
	if err != nil {
		return nil, fmt.Errorf("latchchar: build %s: %w", cell.Name, err)
	}
	refEv, err := stf.NewEvaluator(refInst, opts.Eval)
	if err != nil {
		return nil, fmt.Errorf("latchchar: evaluator: %w", err)
	}
	cal := refEv.Calibration()

	factory := func() (surface.EvalFunc, error) {
		inst, err := cell.Build()
		if err != nil {
			return nil, err
		}
		cfg := opts.Eval
		cfg.Obs = sp
		ev, err := stf.NewEvaluatorWithCalibration(inst, cfg, cal)
		if err != nil {
			return nil, err
		}
		return ev.Eval, nil
	}
	sAxis := surface.Linspace(opts.Domain.MinS, opts.Domain.MaxS, opts.N)
	hAxis := surface.Linspace(opts.Domain.MinH, opts.Domain.MaxH, opts.N)
	sf, err := surface.GenerateObs(sp, sAxis, hAxis, factory, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("latchchar: surface generation: %w", err)
	}
	return &SurfaceResult{
		Surface:     sf,
		Contour:     sf.Contour(0),
		Calibration: cal,
		Sims:        sf.NumSamples(),
		Elapsed:     time.Since(start),
	}, nil
}

// CompareContours returns the maximum and mean distance from the traced
// contour's points to the surface-extracted contour — the quantitative
// overlay of Figs. 10 and 12(b). Distances are in seconds.
func CompareContours(en *Contour, ref []Polyline) (max, mean float64, err error) {
	return surface.Deviation(en.SetupHoldPairs(), ref)
}

// NewEvaluator builds a state-transition evaluator for a fresh instance of
// the cell.
func NewEvaluator(cell *Cell, cfg EvalConfig) (*Evaluator, error) {
	inst, err := cell.Build()
	if err != nil {
		return nil, err
	}
	return stf.NewEvaluator(inst, cfg)
}
