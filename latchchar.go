// Package latchchar is an interdependent latch setup/hold time
// characterization library, reproducing "Interdependent Latch Setup/Hold
// Time Characterization via Euler-Newton Curve Tracing on State-Transition
// Equations" (Srivastava & Roychowdhury, DAC 2007).
//
// The library formulates the constant clock-to-Q contour of a register as
// the solution set of the underdetermined scalar equation
//
//	h(τs, τh) = cᵀφ(tf; x0, 0, τs, τh) − r = 0
//
// where φ is the state-transition function of the register's circuit
// equations, and traces the contour directly with a Moore-Penrose Newton
// corrector inside an Euler predictor-corrector continuation — computing a
// full interdependent setup/hold tradeoff curve in O(n) transient
// simulations instead of the O(n²) of brute-force surface generation.
//
// The simplest entry point characterizes a built-in register cell:
//
//	cell, _ := latchchar.CellByName("tspc")
//	res, err := latchchar.Characterize(cell, latchchar.Options{Points: 40})
//	for _, p := range res.Contour.Points {
//		fmt.Printf("τs=%.1fps τh=%.1fps\n", p.TauS*1e12, p.TauH*1e12)
//	}
//
// The underlying pieces — the circuit simulator, the state-transition
// evaluator, the MPNR/Euler-Newton solvers and the brute-force baseline —
// are exposed through the type aliases below for programs that need finer
// control.
package latchchar

import (
	"context"
	"errors"
	"fmt"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/obs"
	"latchchar/internal/registers"
	"latchchar/internal/stf"
	"latchchar/internal/surface"
	"latchchar/internal/transient"
	"latchchar/internal/wave"
)

// Re-exported building blocks. The aliases give external users access to
// the full type surface without reaching into internal packages.
type (
	// Cell is a register type with its standard characterization stimulus.
	Cell = registers.Cell
	// Instance is one built register circuit.
	Instance = registers.Instance
	// Process holds device/technology parameters for the built-in cells.
	Process = registers.Process
	// Timing holds the clock/data timing for the built-in cells.
	Timing = registers.Timing
	// Contour is a traced constant clock-to-Q curve.
	Contour = core.Contour
	// ContourPoint is one solved point on the contour.
	ContourPoint = core.Point
	// Rect bounds a skew domain.
	Rect = core.Rect
	// Calibration holds the measured characteristic timing (tc, tf, r).
	Calibration = stf.Calibration
	// Evaluator computes h(τs, τh) and its gradient for an instance.
	Evaluator = stf.Evaluator
	// EvalConfig tunes the state-transition evaluator.
	EvalConfig = stf.Config
	// TraceOptions tunes the Euler-Newton tracer.
	TraceOptions = core.TraceOptions
	// MPNROptions tunes the Moore-Penrose Newton corrector.
	MPNROptions = core.MPNROptions
	// SeedOptions tunes the first-point bracketing search.
	SeedOptions = core.SeedOptions
	// Surface is a sampled output surface over the skew plane.
	Surface = surface.Surface
	// Polyline is an extracted iso-contour chain.
	Polyline = surface.Polyline
	// Problem is the abstract h(τs, τh) = 0 interface the solvers accept.
	Problem = core.Problem
)

// Method re-exports the integration schemes.
const (
	BE   = transient.BE
	TRAP = transient.TRAP
)

// Data-ramp profiles for Timing.DataShape.
const (
	// RampSmooth is the C¹ smoothstep profile (default).
	RampSmooth = wave.RampSmooth
	// RampLinear is the piecewise-linear SPICE PULSE-style profile.
	RampLinear = wave.RampLinear
)

// CellByName returns a built-in register cell ("tspc", "c2mos" or "tgate")
// with default process and timing.
func CellByName(name string) (*Cell, error) { return registers.ByName(name) }

// DefaultProcess returns the default technology parameters.
func DefaultProcess() Process { return registers.DefaultProcess() }

// DefaultTiming returns the paper's clock/data timing.
func DefaultTiming() Timing { return registers.DefaultTiming() }

// TSPCCell builds a TSPC cell with explicit parameters.
func TSPCCell(p Process, tm Timing) *Cell { return registers.TSPC(p, tm) }

// C2MOSCell builds a C²MOS cell with explicit parameters and clk̄ delay.
func C2MOSCell(p Process, tm Timing, clkbDelay float64) *Cell {
	return registers.C2MOS(p, tm, registers.C2MOSOptions{ClkbDelay: clkbDelay})
}

// TGateCell builds the transmission-gate example cell.
func TGateCell(p Process, tm Timing) *Cell { return registers.TGate(p, tm) }

// CellMakerByName returns a constructor over the process axes for a built-in
// cell — the mk argument Monte-Carlo flows rebuild perturbed cells with. The
// timing is fixed across draws; inline netlists have no maker (they carry no
// process parameters to perturb).
func CellMakerByName(name string, tm Timing) (func(Process) *Cell, error) {
	switch name {
	case "tspc":
		return func(p Process) *Cell { return TSPCCell(p, tm) }, nil
	case "c2mos":
		return func(p Process) *Cell { return C2MOSCell(p, tm, 0) }, nil
	case "tgate":
		return func(p Process) *Cell { return TGateCell(p, tm) }, nil
	}
	return nil, fmt.Errorf("latchchar: cell %q has no process-parameterized constructor", name)
}

// Options configure a full characterization run.
type Options struct {
	// Points is the number of contour points to trace per direction
	// (default 40, the paper's validation count).
	Points int
	// Step is the Euler step length α (default 5 ps).
	Step float64
	// Bounds stops tracing outside this skew rectangle. The zero Rect
	// enables a default domain derived from Eval.MaxSetupSkew.
	Bounds Rect
	// BothDirections traces the curve both ways from the seed.
	BothDirections bool
	// Eval tunes the underlying transient evaluator.
	Eval EvalConfig
	// Seed tunes the first-point search.
	Seed SeedOptions
	// MPNR tunes the corrector.
	MPNR MPNROptions
	// RecordSteps keeps the predictor/corrector history in the result.
	RecordSteps bool
	// Resample, when ≥ 2, redistributes the traced contour into exactly
	// that many arc-length-uniform points, each polished back onto the
	// curve with MPNR.
	Resample int
	// Block is the predictor lookahead width: a value > 1 makes the tracer
	// predict a bundle of Block points along the tangent each cycle and
	// correct them as one lockstep block-transient (shared Jacobians, batched
	// device evaluation, per-point peel-off). 0 or 1 keeps the scalar
	// predictor-corrector.
	Block int
	// Obs attaches observability: spans, counters, histograms and live
	// progress flow to the run's sinks. nil disables collection with no
	// hot-path cost.
	Obs *ObsRun
}

// Result is the outcome of Characterize.
type Result struct {
	// Contour is the traced constant clock-to-Q curve.
	Contour *Contour
	// Calibration is the measured characteristic timing.
	Calibration Calibration
	// Seed is the first point handed to the tracer.
	Seed ContourPoint
	// PlainSims and GradSims count transient simulations by kind
	// (calibration excluded; it is a fixed +1 for any method).
	PlainSims, GradSims int
	// Stats aggregates integrator-level work (steps, Newton iterations, LU
	// factorizations, wall-clock attribution) over the whole run.
	Stats transient.Stats
	// Elapsed is the wall-clock characterization time.
	Elapsed time.Duration
}

// TotalSims returns the total transient count, the paper's cost metric.
func (r *Result) TotalSims() int { return r.PlainSims + r.GradSims }

// ErrCanceled is the sentinel wrapped by every cancellation report; test
// with errors.Is. Canceled characterizations return it alongside a Result
// carrying the partial contour traced so far.
var ErrCanceled = core.ErrCanceled

// CanceledError is the structured cancellation report: the interrupted
// stage, the last solved point and the partial-contour size.
type CanceledError = core.CanceledError

// Characterize is CharacterizeCtx with context.Background().
func Characterize(cell *Cell, opts Options) (*Result, error) {
	return CharacterizeCtx(context.Background(), cell, opts)
}

// CharacterizeCtx runs the complete Euler-Newton flow of the paper on a
// fresh instance of the cell: calibrate, bracket a seed at large hold skew,
// correct it with MPNR, and trace the constant clock-to-Q contour. It is
// the canonical characterization entry point; the context threads through
// the seed search, the tracer and into the transient step loop, so
// cancellation takes effect within one integration step. A canceled run
// returns an error wrapping ErrCanceled together with a non-nil Result
// holding the partial contour (when the trace had begun) — still a valid
// prefix of the setup/hold tradeoff curve. Services and batch workloads
// want Engine.Characterize instead, which runs the same flow on a bounded
// worker pool with calibration reuse.
func CharacterizeCtx(ctx context.Context, cell *Cell, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	inst, err := cell.Build()
	if err != nil {
		return nil, fmt.Errorf("latchchar: build %s: %w", cell.Name, err)
	}
	ev, err := stf.NewEvaluator(inst, opts.Eval)
	if err != nil {
		return nil, fmt.Errorf("latchchar: evaluator: %w", err)
	}
	res, _, err := characterizeCtx(ctx, ev, opts, nil)
	return res, err
}

// CharacterizeWithEvaluator is CharacterizeWithEvaluatorCtx with
// context.Background().
func CharacterizeWithEvaluator(ev *Evaluator, opts Options) (*Result, error) {
	return CharacterizeWithEvaluatorCtx(context.Background(), ev, opts)
}

// CharacterizeWithEvaluatorCtx runs the characterization flow on an
// existing evaluator (e.g. to reuse one across parameter sweeps); see
// CharacterizeCtx for the cancellation semantics.
func CharacterizeWithEvaluatorCtx(ctx context.Context, ev *Evaluator, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res, _, err := characterizeCtx(ctx, ev, opts, nil)
	return res, err
}

// characterizeCtx is the shared characterization core. A non-nil warm point
// (a contour point donated by a previously traced neighbor — another PVT
// corner or Monte-Carlo sample of the same cell) replaces the bracketing
// search entirely: the tracer's own MPNR seed correction pulls it onto this
// instance's curve in a couple of gradient evaluations. If the warm trace
// fails or degenerates, the cold flow runs as a fallback. The returned bool
// reports whether the warm seed was actually used.
func characterizeCtx(ctx context.Context, ev *Evaluator, opts Options, warm *ContourPoint) (*Result, bool, error) {
	start := time.Now()
	ev.ResetCounters()
	sp := opts.Obs.StartSpan(obs.SpanCharacterize)
	ev.SetObs(sp)
	defer func() {
		ev.SetObs(opts.Obs)
		sp.End()
	}()
	cfg := opts.Eval
	maxS := cfg.MaxSetupSkew
	if maxS <= 0 {
		maxS = 1.0e-9 // stf default
	}
	bounds := opts.Bounds
	if (bounds == Rect{}) {
		bounds = Rect{MinS: 1e-12, MaxS: maxS, MinH: 1e-12, MaxH: maxS}
	}
	traceOpts := TraceOptions{
		Step:           opts.Step,
		MaxPoints:      opts.Points,
		Bounds:         bounds,
		BothDirections: opts.BothDirections,
		MPNR:           opts.MPNR,
		RecordSteps:    opts.RecordSteps,
		Block:          opts.Block,
		Obs:            sp,
	}
	finish := func(ct *Contour) *Result {
		if ct == nil {
			ct = &Contour{}
		}
		res := &Result{
			Contour:     ct,
			Calibration: ev.Calibration(),
			PlainSims:   ev.PlainEvals,
			GradSims:    ev.GradEvals,
			Stats:       ev.Work,
			Elapsed:     time.Since(start),
		}
		if len(ct.Points) > 0 {
			res.Seed = ct.Points[0]
		}
		return res
	}

	warmUsed := false
	var ct *Contour
	var err error
	if warm != nil {
		ct, err = core.TraceContourCtx(ctx, ev, warm.TauS, warm.TauH, traceOpts)
		switch {
		case err == nil && len(ct.Points) >= 2:
			warmUsed = true
			sp.Count(obs.CtrWarmSeeds, 1)
		case err != nil && errors.Is(err, ErrCanceled):
			return finish(ct), true, fmt.Errorf("latchchar: tracing: %w", err)
		}
		// Any other outcome (seed correction diverged on this instance's
		// curve, degenerate contour) falls back to the cold flow below; the
		// transients already spent stay in the counters.
	}
	if !warmUsed {
		seedOpts := opts.Seed
		if seedOpts.Hi <= 0 || seedOpts.Hi > maxS {
			seedOpts.Hi = 0.8 * maxS
		}
		seedOpts.Obs = sp
		seed, serr := core.FindSeedCtx(ctx, ev, seedOpts)
		if serr != nil {
			return nil, false, fmt.Errorf("latchchar: seeding: %w", serr)
		}
		ct, err = core.TraceContourCtx(ctx, ev, seed.TauS, seed.TauH, traceOpts)
		if err != nil {
			if errors.Is(err, ErrCanceled) {
				return finish(ct), false, fmt.Errorf("latchchar: tracing: %w", err)
			}
			return nil, false, fmt.Errorf("latchchar: tracing: %w", err)
		}
	}
	if opts.Resample >= 2 {
		resampleOpts := opts.MPNR
		resampleOpts.Obs = sp
		// Block > 1 batches the per-point polish through the lockstep
		// block-transient kernel, just like the trace loop's bundles.
		rs, rerr := core.ResampleContourBlockCtx(ctx, ev, ct, opts.Resample, opts.Block, resampleOpts)
		if rerr != nil {
			if errors.Is(rerr, ErrCanceled) {
				// Keep the fully traced contour; only the redistribution
				// was interrupted.
				return finish(ct), warmUsed, fmt.Errorf("latchchar: resampling: %w", rerr)
			}
			return nil, warmUsed, fmt.Errorf("latchchar: resampling: %w", rerr)
		}
		ct = rs
	}
	return finish(ct), warmUsed, nil
}

// SurfaceOptions configure brute-force surface generation.
type SurfaceOptions struct {
	// N is the grid resolution per axis (default 40, i.e. the paper's
	// 40×40 = 1600 simulations).
	N int
	// Domain is the swept skew rectangle (default [10 ps, 0.8 ns]²).
	Domain Rect
	// Parallelism bounds the sweep's concurrency (default: the engine
	// pool's worker count). The paper's cost comparison counts simulations,
	// which is independent of Parallelism.
	Parallelism int
	// Block is the block-transient lane count: a value > 1 evaluates each
	// grid row in chunks of Block lockstep lanes sharing Jacobian
	// factorizations and device evaluations (the per-row cost accounting is
	// unchanged — still one transient per grid point). 0 or 1 keeps scalar
	// per-point evaluation.
	Block int
	// Eval tunes the per-worker evaluators.
	Eval EvalConfig
	// Obs attaches observability: the sweep runs inside a "surface" span
	// with per-row progress; worker transients are counted. nil disables
	// collection.
	Obs *ObsRun
}

// SurfaceResult is the outcome of BruteForce.
type SurfaceResult struct {
	// Surface holds h(τs, τh) samples (add Calibration.R for the raw
	// output-voltage surface of Figs. 1(a) and 9).
	Surface *Surface
	// Contour is the marching-squares extraction of h = 0 — the
	// interdependent setup/hold pairs of the brute-force method.
	Contour []Polyline
	// Calibration is the shared characteristic timing.
	Calibration Calibration
	// Sims is the number of grid transient simulations (N²).
	Sims int
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
}

// BruteForce is BruteForceCtx with context.Background().
func BruteForce(cell *Cell, opts SurfaceOptions) (*SurfaceResult, error) {
	return BruteForceCtx(context.Background(), cell, opts)
}

// BruteForceCtx reproduces the prior-practice baseline: sample the output
// surface on an N×N grid of trial skews and extract the constant clock-to-Q
// contour by interpolation, running the grid on the shared DefaultEngine
// pool with cancellation.
func BruteForceCtx(ctx context.Context, cell *Cell, opts SurfaceOptions) (*SurfaceResult, error) {
	return DefaultEngine().BruteForce(ctx, cell, opts)
}

// BruteForce runs the brute-force baseline on this engine's pool: one task
// per grid row, sharing the Parallelism bound (and the calibration cache)
// with any concurrently running batch.
func (e *Engine) BruteForce(ctx context.Context, cell *Cell, opts SurfaceOptions) (*SurfaceResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 40
	}
	if (opts.Domain == Rect{}) {
		opts.Domain = Rect{MinS: 10e-12, MaxS: 0.8e-9, MinH: 10e-12, MaxH: 0.8e-9}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = e.pool.NumWorkers()
	}
	start := time.Now()
	sp := opts.Obs.StartSpan(obs.SpanSurface)
	defer sp.End()
	// Calibrate once (or fetch from the engine cache); workers reuse the
	// numbers, keeping the cost accounting at exactly N² grid transients.
	cal, _, err := e.calibrationFor(cell, opts.Eval, sp)
	if err != nil {
		return nil, err
	}
	newEval := func() (*stf.Evaluator, error) {
		inst, err := cell.Build()
		if err != nil {
			return nil, err
		}
		cfg := opts.Eval
		cfg.Obs = sp
		ev, err := stf.NewEvaluatorWithCalibration(inst, cfg, cal)
		if err != nil {
			return nil, err
		}
		ev.SetContext(ctx)
		return ev, nil
	}
	sAxis := surface.Linspace(opts.Domain.MinS, opts.Domain.MaxS, opts.N)
	hAxis := surface.Linspace(opts.Domain.MinH, opts.Domain.MaxH, opts.N)
	var sf *Surface
	if opts.Block > 1 {
		// Row-at-a-time sweep: each row is evaluated in chunks of Block
		// lockstep block-transient lanes sharing the stimulus prefix and
		// Jacobian factorizations.
		lanes := opts.Block
		factory := func() (surface.BlockEvalFunc, error) {
			ev, err := newEval()
			if err != nil {
				return nil, err
			}
			tauS := make([]float64, 0, lanes)
			return func(s float64, h, out []float64) error {
				for lo := 0; lo < len(h); lo += lanes {
					hi := lo + lanes
					if hi > len(h) {
						hi = len(h)
					}
					tauS = tauS[:0]
					for range h[lo:hi] {
						tauS = append(tauS, s)
					}
					vals, err := ev.EvalBlock(tauS, h[lo:hi])
					if err != nil {
						return err
					}
					copy(out[lo:hi], vals)
				}
				return nil
			}, nil
		}
		sf, err = surface.GenerateBlockCtx(ctx, sp, sAxis, hAxis, factory, e.pool, workers)
	} else {
		factory := func() (surface.EvalFunc, error) {
			ev, err := newEval()
			if err != nil {
				return nil, err
			}
			return ev.Eval, nil
		}
		sf, err = surface.GenerateCtx(ctx, sp, sAxis, hAxis, factory, e.pool, workers)
	}
	if err != nil {
		return nil, fmt.Errorf("latchchar: surface generation: %w", err)
	}
	return &SurfaceResult{
		Surface:     sf,
		Contour:     sf.Contour(0),
		Calibration: cal,
		Sims:        sf.NumSamples(),
		Elapsed:     time.Since(start),
	}, nil
}

// CompareContours returns the maximum and mean distance from the traced
// contour's points to the surface-extracted contour — the quantitative
// overlay of Figs. 10 and 12(b). Distances are in seconds.
func CompareContours(en *Contour, ref []Polyline) (max, mean float64, err error) {
	return surface.Deviation(en.SetupHoldPairs(), ref)
}

// DefaultFastPath returns the canonical fast-path evaluator configuration:
// chord-Newton iteration with Jacobian reuse plus latency-aware device
// bypass, the PR 5 accuracy-gated speedups. It is the single home for what
// "fast" means — the -fast CLI flags and the HTTP "fast_path" field both
// resolve to exactly this. Callers tune other fields on the returned config
// as usual.
func DefaultFastPath() EvalConfig { return EvalConfig{}.WithFastPath() }

// NewEvaluator builds a state-transition evaluator for a fresh instance of
// the cell.
func NewEvaluator(cell *Cell, cfg EvalConfig) (*Evaluator, error) {
	inst, err := cell.Build()
	if err != nil {
		return nil, err
	}
	return stf.NewEvaluator(inst, cfg)
}
