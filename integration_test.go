package latchchar

// Integration tests exercising the full characterization flow on the
// paper's validation registers. Each test is tagged with the experiment it
// backs in EXPERIMENTS.md (E-numbers from DESIGN.md).

import (
	"math"
	"sort"
	"testing"

	"latchchar/internal/core"
	"latchchar/internal/num"
	"latchchar/internal/stf"
	"latchchar/internal/surface"
)

// cached results: full characterizations take ~1–2 s each, so tests share.
var (
	tspcResult  *Result
	c2mosResult *Result
)

func characterizeOnce(t *testing.T, cell string) *Result {
	t.Helper()
	cached := &tspcResult
	if cell == "c2mos" {
		cached = &c2mosResult
	}
	if *cached != nil {
		return *cached
	}
	c, err := CellByName(cell)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterize(c, Options{Points: 40, BothDirections: true})
	if err != nil {
		t.Fatal(err)
	}
	*cached = res
	return res
}

func evaluatorOnce(t *testing.T, cell string) *Evaluator {
	t.Helper()
	c, err := CellByName(cell)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(c, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// E2: Fig. 8 — the TSPC constant clock-to-Q contour.
func TestCharacterizeTSPC(t *testing.T) {
	res := characterizeOnce(t, "tspc")
	if len(res.Contour.Points) < 30 {
		t.Fatalf("contour too short: %d points", len(res.Contour.Points))
	}
	for i, p := range res.Contour.Points {
		if p.TauS <= 0 || p.TauH <= 0 {
			t.Errorf("point %d has non-positive skews: (%v, %v)", i, p.TauS, p.TauH)
		}
		if math.Abs(p.H) > 1e-5 {
			t.Errorf("point %d off the contour: |h| = %v", i, math.Abs(p.H))
		}
	}
	// The tradeoff: along the ordered curve, τs and τh move in opposite
	// (weak) directions — shorter hold costs longer setup. Sub-picosecond
	// jitter near the asymptotes (where one coordinate is essentially
	// constant) is tolerated.
	pts := res.Contour.Points
	for i := 1; i < len(pts); i++ {
		ds := pts[i].TauS - pts[i-1].TauS
		dh := pts[i].TauH - pts[i-1].TauH
		if ds*dh > 0 && math.Abs(ds) > 1e-12 && math.Abs(dh) > 1e-12 {
			t.Errorf("step %d violates tradeoff: Δτs=%v Δτh=%v", i, ds, dh)
		}
	}
	// The setup-time asymptote (large τh) should be near the independent
	// setup time; the curve must show real interdependence: the τs span is
	// wide.
	minS, maxS := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minS = math.Min(minS, p.TauS)
		maxS = math.Max(maxS, p.TauS)
	}
	if maxS-minS < 100e-12 {
		t.Errorf("contour spans only %v ps of setup skew", (maxS-minS)*1e12)
	}
}

// E13: calibration against the paper's reported magnitudes.
func TestCalibrationLandsInPaperRange(t *testing.T) {
	res := characterizeOnce(t, "tspc")
	d := res.Calibration.CharDelay
	if d < 100e-12 || d > 600e-12 {
		t.Errorf("TSPC characteristic delay %v ps outside the paper-like range", d*1e12)
	}
	res2 := characterizeOnce(t, "c2mos")
	d2 := res2.Calibration.CharDelay
	if d2 < 100e-12 || d2 > 800e-12 {
		t.Errorf("C2MOS characteristic delay %v ps outside the paper-like range", d2*1e12)
	}
	if !res.Calibration.Rising || res2.Calibration.Rising {
		t.Error("transition directions wrong")
	}
}

// E6: "MPNR typically converges very quickly (2–3 iterations) as the curve
// is traced since the Euler steps provide excellent initial guesses."
func TestCorrectorIterationsTwoToThree(t *testing.T) {
	for _, cell := range []string{"tspc", "c2mos"} {
		res := characterizeOnce(t, cell)
		iters := make([]int, 0, len(res.Contour.Points))
		for _, p := range res.Contour.Points[1:] {
			iters = append(iters, p.CorrectorIters)
		}
		sort.Ints(iters)
		median := iters[len(iters)/2]
		if median > 3 {
			t.Errorf("%s: median corrector iterations %d, want ≤ 3", cell, median)
		}
		over := 0
		for _, it := range iters {
			if it > 5 {
				over++
			}
		}
		if over > len(iters)/10 {
			t.Errorf("%s: %d of %d points needed > 5 iterations", cell, over, len(iters))
		}
	}
}

// E12: "points obtained on the curve are accurate up to 5 digits". The
// distance from each traced point to the true curve is ≈ |h|/‖∇h‖; five
// digits on ~300 ps skews is 3 fs, so demand much better.
func TestFiveDigitAccuracy(t *testing.T) {
	for _, cell := range []string{"tspc", "c2mos"} {
		res := characterizeOnce(t, cell)
		for i, p := range res.Contour.Points {
			grad := math.Hypot(p.DhdS, p.DhdH)
			if grad == 0 {
				t.Fatalf("%s point %d has zero gradient", cell, i)
			}
			dist := math.Abs(p.H) / grad
			if dist > 1e-15 {
				t.Errorf("%s point %d: distance to curve ≈ %v s exceeds 5-digit accuracy", cell, i, dist)
			}
		}
	}
}

// E5: Fig. 4 — MPNR convergence from an off-curve guess, with a recorded
// trajectory whose residual shrinks monotonically.
func TestMPNRConvergenceTrajectory(t *testing.T) {
	ev := evaluatorOnce(t, "tspc")
	res := characterizeOnce(t, "tspc")
	// Perturb a mid-curve point well off the curve.
	mid := res.Contour.Points[len(res.Contour.Points)/2]
	start := core.Point{TauS: mid.TauS + 15e-12, TauH: mid.TauH + 15e-12}
	sol, err := core.SolveMPNR(ev, start.TauS, start.TauH, core.MPNROptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.GradEvals > 8 {
		t.Errorf("MPNR took %d gradient evaluations", sol.GradEvals)
	}
	for i := 1; i < len(sol.Trajectory); i++ {
		if math.Abs(sol.Trajectory[i].H) > math.Abs(sol.Trajectory[i-1].H)*1.2 {
			t.Errorf("residual grew at iterate %d: %v -> %v", i,
				sol.Trajectory[i-1].H, sol.Trajectory[i].H)
		}
	}
	// MPNR converges near the perturbation (nearest-point property):
	// the solution should be within a few predictor steps of mid.
	d := math.Hypot(sol.TauS-mid.TauS, sol.TauH-mid.TauH)
	if d > 50e-12 {
		t.Errorf("MPNR wandered %v ps from the perturbed region", d*1e12)
	}
}

// E4: Fig. 3(a) — for fixed τs, the clock-to-Q delay grows as τh shrinks.
func TestOutputFamilyMonotoneInHoldSkew(t *testing.T) {
	ev := evaluatorOnce(t, "tspc")
	cal := ev.Calibration()
	edge := ev.Instance().Edge50
	tEnd := edge + 3e-9
	prevDelay := -1.0
	first, last := -1.0, -1.0
	for _, tauH := range []float64{400e-12, 250e-12, 200e-12, 180e-12, 165e-12} {
		times, out, err := ev.OutputUntil(400e-12, tauH, tEnd)
		if err != nil {
			t.Fatal(err)
		}
		tc, ok := num.CrossingTime(times, out, cal.R, +1, edge)
		if !ok {
			t.Fatalf("no crossing at τh=%v", tauH)
		}
		delay := tc - edge
		// Allow ≤ 2 ps of non-monotone jitter (integration/interpolation
		// noise); the trend must hold.
		if delay < prevDelay-2e-12 {
			t.Errorf("delay shrank as hold skew shrank: τh=%v delay=%v prev=%v", tauH, delay, prevDelay)
		}
		prevDelay = delay
		if first < 0 {
			first = delay
		}
		last = delay
	}
	if last < first+5e-12 {
		t.Errorf("delay did not grow toward the hold cliff: %v ps → %v ps", first*1e12, last*1e12)
	}
}

// E4 (second half): two different (τs, τh) pairs on the contour produce the
// same clock-to-Q delay — the interdependence the paper exploits.
func TestInterdependentPairsSameDelay(t *testing.T) {
	res := characterizeOnce(t, "tspc")
	ev := evaluatorOnce(t, "tspc")
	cal := ev.Calibration()
	edge := ev.Instance().Edge50
	pts := res.Contour.Points
	// Pick two well-separated contour points.
	a, b := pts[len(pts)/5], pts[4*len(pts)/5]
	if math.Hypot(a.TauS-b.TauS, a.TauH-b.TauH) < 50e-12 {
		t.Skip("contour points not separated enough for the comparison")
	}
	delayOf := func(p core.Point) float64 {
		times, out, err := ev.OutputUntil(p.TauS, p.TauH, edge+3e-9)
		if err != nil {
			t.Fatal(err)
		}
		tc, ok := num.CrossingTime(times, out, cal.R, +1, edge)
		if !ok {
			t.Fatalf("no crossing for point (%v, %v)", p.TauS, p.TauH)
		}
		return tc - edge
	}
	da, db := delayOf(a), delayOf(b)
	if math.Abs(da-db) > 2e-12 {
		t.Errorf("contour points disagree on delay: %v ps vs %v ps", da*1e12, db*1e12)
	}
	// And both are ≈ 10% above the characteristic delay.
	want := 1.1 * cal.CharDelay
	if math.Abs(da-want) > 5e-12 {
		t.Errorf("delay %v ps, want ≈ %v ps (10%% degraded)", da*1e12, want*1e12)
	}
}

// E3: Fig. 10 — the Euler-Newton contour overlays the brute-force surface
// contour to within the surface's own interpolation resolution.
func TestTSPCContourMatchesSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("surface generation is slow")
	}
	res := characterizeOnce(t, "tspc")
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	domain := Rect{MinS: 100e-12, MaxS: 800e-12, MinH: 100e-12, MaxH: 800e-12}
	sr, err := BruteForce(cell, SurfaceOptions{N: 29, Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Contour) == 0 {
		t.Fatal("surface contour empty")
	}
	// Restrict the EN contour to the surface domain (with a one-cell margin
	// so boundary clipping doesn't pollute the comparison).
	cellSize := (domain.MaxS - domain.MinS) / 28
	inner := Rect{
		MinS: domain.MinS + cellSize, MaxS: domain.MaxS - cellSize,
		MinH: domain.MinH + cellSize, MaxH: domain.MaxH - cellSize,
	}
	var pts [][2]float64
	for _, p := range res.Contour.Points {
		if inner.Contains(p.TauS, p.TauH) {
			pts = append(pts, [2]float64{p.TauS, p.TauH})
		}
	}
	if len(pts) < 10 {
		t.Fatalf("only %d EN points inside the surface domain", len(pts))
	}
	max, mean, err := surface.Deviation(pts, sr.Contour)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TSPC overlay: max=%.2f ps mean=%.2f ps (cell %.2f ps, %d surface sims)",
		max*1e12, mean*1e12, cellSize*1e12, sr.Sims)
	if max > 1.5*cellSize {
		t.Errorf("max deviation %v ps exceeds 1.5 grid cells (%v ps)", max*1e12, 1.5*cellSize*1e12)
	}
}

// E9: Fig. 12 — the same overlay for the C²MOS register.
func TestC2MOSContourMatchesSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("surface generation is slow")
	}
	res := characterizeOnce(t, "c2mos")
	cell, err := CellByName("c2mos")
	if err != nil {
		t.Fatal(err)
	}
	domain := Rect{MinS: 250e-12, MaxS: 950e-12, MinH: 150e-12, MaxH: 850e-12}
	sr, err := BruteForce(cell, SurfaceOptions{N: 29, Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	cellSize := (domain.MaxS - domain.MinS) / 28
	inner := Rect{
		MinS: domain.MinS + cellSize, MaxS: domain.MaxS - cellSize,
		MinH: domain.MinH + cellSize, MaxH: domain.MaxH - cellSize,
	}
	var pts [][2]float64
	for _, p := range res.Contour.Points {
		if inner.Contains(p.TauS, p.TauH) {
			pts = append(pts, [2]float64{p.TauS, p.TauH})
		}
	}
	if len(pts) < 10 {
		t.Fatalf("only %d EN points inside the surface domain", len(pts))
	}
	max, mean, err := surface.Deviation(pts, sr.Contour)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("C2MOS overlay: max=%.2f ps mean=%.2f ps (cell %.2f ps)", max*1e12, mean*1e12, cellSize*1e12)
	if max > 1.5*cellSize {
		t.Errorf("max deviation %v ps exceeds 1.5 grid cells", max*1e12)
	}
}

// E8: Fig. 11(b) — C²MOS false transition: for marginal hold skews the
// output completes most of its transition and then reverts, motivating the
// 90% criterion.
func TestC2MOSFalseTransition(t *testing.T) {
	ev := evaluatorOnce(t, "c2mos")
	edge := ev.Instance().Edge50
	vdd := ev.Instance().VDD
	found := false
	for _, tauH := range []float64{240e-12, 220e-12, 200e-12, 180e-12, 150e-12} {
		_, out, err := ev.OutputUntil(600e-12, tauH, edge+3e-9)
		if err != nil {
			t.Fatal(err)
		}
		minV := math.Inf(1)
		for _, v := range out {
			minV = math.Min(minV, v)
		}
		final := out[len(out)-1]
		// Fell past 80% of the 2.5→0 transition, yet ended high again.
		if minV < 0.2*vdd && final > 0.8*vdd {
			found = true
			break
		}
	}
	if !found {
		t.Error("no false transition found in the marginal hold-skew range")
	}
}

// E10: the speedup of Euler-Newton over surface generation scales linearly
// with the number of contour points n (O(n) vs O(n²) simulations).
func TestSpeedupScalesLinearly(t *testing.T) {
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	perPoint := map[int]float64{}
	for _, n := range []int{10, 20, 40} {
		res, err := Characterize(cell, Options{
			Points:         n,
			Step:           5e-12,
			BothDirections: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		traced := len(res.Contour.Points)
		if traced < n {
			t.Fatalf("traced only %d points for n=%d", traced, n)
		}
		perPoint[n] = float64(res.TotalSims()) / float64(traced)
		t.Logf("n=%d: %d points, %d sims (%.2f sims/point)", n, traced, res.TotalSims(), perPoint[n])
	}
	// Linear cost: simulations per contour point stay bounded and roughly
	// constant as n grows — against the n simulations per point a surface
	// of matching resolution spends.
	for n, pp := range perPoint {
		if pp > 6 {
			t.Errorf("n=%d: %.2f sims per point, want ≤ 6", n, pp)
		}
	}
	if r := perPoint[40] / perPoint[10]; r > 1.5 {
		t.Errorf("per-point cost grew %.2f× from n=10 to n=40 (superlinear total cost)", r)
	}
	// Speedup at n = 40 against the 40×40 surface: the paper reports ≈ 26×;
	// with simulation counting we expect the same order (≥ 8× conservatively).
	speedup := 1600.0 / (perPoint[40] * 40)
	t.Logf("speedup at n=40: %.1f×", speedup)
	if speedup < 8 {
		t.Errorf("speedup %.1f× at n=40, want ≥ 8×", speedup)
	}
}

// E11: the prior-work baseline — direct NR beats binary search for
// independent setup/hold characterization at equal accuracy.
func TestIndependentNRBeatsBinarySearch(t *testing.T) {
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	opts := IndependentOptions{Tol: 0.05e-12}
	sNR, hNR, err := IndependentTimes(cell, EvalConfig{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sBis, hBis, err := IndependentBaseline(cell, EvalConfig{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sNR.Skew-sBis.Skew) > 1e-12 {
		t.Errorf("setup times disagree: NR %v ps, bisection %v ps", sNR.Skew*1e12, sBis.Skew*1e12)
	}
	if math.Abs(hNR.Skew-hBis.Skew) > 1e-12 {
		t.Errorf("hold times disagree: NR %v ps, bisection %v ps", hNR.Skew*1e12, hBis.Skew*1e12)
	}
	costNR := sNR.PlainEvals + sNR.GradEvals + hNR.PlainEvals + hNR.GradEvals
	costBis := sBis.PlainEvals + hBis.PlainEvals
	t.Logf("independent char (cold): NR %d sims, bisection %d sims (%.1f×)", costNR, costBis, float64(costBis)/float64(costNR))
	if float64(costBis) < 1.5*float64(costNR) {
		t.Errorf("NR not ≥1.5× cheaper: %d vs %d", costNR, costBis)
	}
	// Warm-started NR — the paper's industrial setting, where a similar
	// register's previously known times seed Newton directly. This is where
	// the cited 4–10× materializes.
	ev := evaluatorOnce(t, "tspc")
	warm := opts
	warm.Guess = sNR.Skew * 1.12 // a "similar register" estimate, 12% off
	sWarm, err := core.IndependentNR(ev, warm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sWarm.Skew-sNR.Skew) > 1e-12 {
		t.Errorf("warm NR drifted: %v vs %v", sWarm.Skew, sNR.Skew)
	}
	costWarm := sWarm.PlainEvals + sWarm.GradEvals
	ratio := float64(sBis.PlainEvals) / float64(costWarm)
	t.Logf("independent char (warm): NR %d sims vs bisection %d (%.1f×)", costWarm, sBis.PlainEvals, ratio)
	if ratio < 3 {
		t.Errorf("warm-start speedup %.1f×, want ≥ 3× (paper: 4–10×)", ratio)
	}
}

// E7: the bracketing seed search lands near the setup-time asymptote.
func TestFirstPointBracketing(t *testing.T) {
	ev := evaluatorOnce(t, "tspc")
	seed, err := core.FindSeed(ev, core.SeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seed.PlainEvals > 10 {
		t.Errorf("bracketing used %d simulations", seed.PlainEvals)
	}
	// The seed must be inside the MPNR basin: correcting from it succeeds
	// in few iterations.
	sol, err := core.SolveMPNR(ev, seed.TauS, seed.TauH, core.MPNROptions{})
	if err != nil {
		t.Fatalf("seed not in the convergence region: %v", err)
	}
	if sol.GradEvals > 6 {
		t.Errorf("seed correction took %d gradient evals", sol.GradEvals)
	}
}

// The TGate example cell: essentially hold-insensitive, but still
// characterizable on the setup axis.
func TestTGateIndependentSetup(t *testing.T) {
	cell, err := CellByName("tgate")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(cell, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.IndependentNR(ev, IndependentOptions{Axis: SetupAxis})
	if err != nil {
		t.Fatal(err)
	}
	if setup.Skew <= 0 || setup.Skew > 1e-9 {
		t.Errorf("tgate setup time %v", setup.Skew)
	}
	// The transmission-gate register has (essentially) no hold requirement:
	// there is no latch/fail boundary on the hold axis in this range.
	if _, err := core.IndependentNR(ev, IndependentOptions{Axis: HoldAxis}); err == nil {
		t.Log("note: tgate unexpectedly shows a hold boundary")
	}
}

// Ablation A1: BE and TRAP produce nearby contours; TRAP needs no more
// corrector effort.
func TestAblationIntegratorContourAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("two full characterizations")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	resBE := characterizeOnce(t, "tspc")
	resTRAP, err := Characterize(cell, Options{
		Points: 20, BothDirections: true,
		Eval: EvalConfig{Method: TRAP},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the hold-asymptote setup time: grab the max-τh point of each.
	pick := func(r *Result) ContourPoint {
		best := r.Contour.Points[0]
		for _, p := range r.Contour.Points {
			if p.TauH > best.TauH {
				best = p
			}
		}
		return best
	}
	a, b := pick(resBE), pick(resTRAP)
	if math.Abs(a.TauS-b.TauS) > 15e-12 {
		t.Errorf("BE and TRAP setup asymptotes differ: %v ps vs %v ps", a.TauS*1e12, b.TauS*1e12)
	}
}

func TestStfEvaluatorSatisfiesProblem(t *testing.T) {
	var _ core.Problem = (*stf.Evaluator)(nil)
}

// E1 (primary formulation): the paper's first-described baseline is the
// clock-to-Q *delay* surface with an iso-delay contour at 10% degradation.
// Its extracted contour must agree with the Euler-Newton contour (and hence
// also with the level-at-tf surface of BruteForce).
func TestDelaySurfaceContourMatchesEN(t *testing.T) {
	if testing.Short() {
		t.Skip("extended-transient surface is slow")
	}
	res := characterizeOnce(t, "tspc")
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	domain := Rect{MinS: 150e-12, MaxS: 750e-12, MinH: 120e-12, MaxH: 720e-12}
	ds, err := BruteForceDelay(cell, SurfaceOptions{N: 21, Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Sims != 441 {
		t.Errorf("Sims = %d", ds.Sims)
	}
	if len(ds.Contour) == 0 {
		t.Fatal("delay-surface contour empty")
	}
	// Sanity on the surface itself: generous corner near characteristic,
	// starved corner at the fail sentinel.
	nGrid := len(ds.Surface.S)
	if d := ds.Surface.At(nGrid-1, nGrid-1); !num.ApproxEqual(d, res.Calibration.CharDelay, 0.05, 0) {
		t.Errorf("generous-corner delay %v ps vs characteristic %v ps", d*1e12, res.Calibration.CharDelay*1e12)
	}
	if d := ds.Surface.At(0, 0); d != ds.FailDelay {
		t.Errorf("starved corner should fail, got %v ps", d*1e12)
	}
	cellSize := (domain.MaxS - domain.MinS) / 20
	inner := Rect{
		MinS: domain.MinS + cellSize, MaxS: domain.MaxS - cellSize,
		MinH: domain.MinH + cellSize, MaxH: domain.MaxH - cellSize,
	}
	var pts [][2]float64
	for _, p := range res.Contour.Points {
		if inner.Contains(p.TauS, p.TauH) {
			pts = append(pts, [2]float64{p.TauS, p.TauH})
		}
	}
	if len(pts) < 8 {
		t.Fatalf("only %d EN points in domain", len(pts))
	}
	max, mean, err := surface.Deviation(pts, ds.Contour)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("delay-surface overlay: max=%.2f ps mean=%.2f ps (cell %.2f ps)", max*1e12, mean*1e12, cellSize*1e12)
	if max > 1.5*cellSize {
		t.Errorf("max deviation %v ps exceeds 1.5 cells", max*1e12)
	}
}
