// Observability re-exports: the internal/obs tracing, metrics and progress
// layer surfaced for library users. A *ObsRun threads through every stage of
// a characterization (Options.Obs and SurfaceOptions.Obs); a nil run
// disables collection entirely and costs nothing on the hot paths.
//
// Typical use:
//
//	f, _ := os.Create("trace.jsonl")
//	run := latchchar.NewObsRun()
//	run.AddSink(latchchar.NewJSONLSink(f))
//	res, err := latchchar.Characterize(cell, latchchar.Options{Obs: run})
//	run.Close()
package latchchar

import (
	"io"
	"time"

	"latchchar/internal/obs"
)

type (
	// ObsRun is the handle threading observability through a run. The nil
	// run is valid and disables collection.
	ObsRun = obs.Run
	// ObsOption configures NewObsRun.
	ObsOption = obs.Option
	// ObsEvent is one record of the structured event stream (schema v1).
	ObsEvent = obs.Event
	// ObsSummary is the aggregate view a finished run renders.
	ObsSummary = obs.Summary
	// ObsSink consumes the event stream (JSON lines, Chrome trace, text).
	ObsSink = obs.Sink
	// ObsProgress is one live progress report.
	ObsProgress = obs.Progress
	// ObsSpanNode is a node of a reconstructed span tree.
	ObsSpanNode = obs.SpanNode
)

// NewObsRun creates an enabled observability run. Attach sinks with AddSink
// before the work starts and Close the run when done.
func NewObsRun(opts ...ObsOption) *ObsRun { return obs.New(opts...) }

// NewJSONLSink streams every event as one JSON object per line.
func NewJSONLSink(w io.Writer) ObsSink { return obs.NewJSONLSink(w) }

// NewChromeTraceSink renders completed spans in the Chrome trace-event
// format; load the output in Perfetto or chrome://tracing.
func NewChromeTraceSink(w io.Writer) ObsSink { return obs.NewChromeTraceSink(w) }

// NewTextSummarySink writes a human-readable phase/counter/histogram summary
// when the run closes.
func NewTextSummarySink(w io.Writer) ObsSink { return obs.NewTextSummarySink(w) }

// WithObsProgress registers a live progress callback invoked at most once
// per interval (and always for a phase's final report).
func WithObsProgress(fn func(ObsProgress), interval time.Duration) ObsOption {
	return obs.WithProgress(fn, interval)
}

// WithObsProfileLabels tags the transient and LU phases with runtime/pprof
// goroutine labels ("lcphase"), so CPU profiles split by phase.
func WithObsProfileLabels() ObsOption { return obs.WithProfileLabels() }

// ReadObsJSONL parses a JSONL event stream written by NewJSONLSink.
func ReadObsJSONL(r io.Reader) ([]ObsEvent, error) { return obs.ReadJSONL(r) }

// ValidateObsEvents checks a parsed event stream against schema v1:
// monotone timestamps, paired span begin/end, resolvable parents.
func ValidateObsEvents(events []ObsEvent) error { return obs.Validate(events) }

// ObsSpanTree reconstructs the span hierarchy from a parsed event stream.
func ObsSpanTree(events []ObsEvent) ([]*ObsSpanNode, error) { return obs.SpanTree(events) }
