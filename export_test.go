package latchchar

import "sync"

// resetWorkersDeprecationForTest re-arms the one-shot legacy-Workers warning
// so the deprecation test owns its firing regardless of test order (-shuffle).
func resetWorkersDeprecationForTest() {
	workersDeprecationOnce = sync.Once{}
}
