package latchchar

import (
	"context"
	"fmt"
	"io"

	"latchchar/internal/core"
	"latchchar/internal/liberty"
	"latchchar/internal/netlist"
	"latchchar/internal/vet"
)

// Deck is a parsed SPICE-like netlist describing a register and its
// characterization stimulus.
type Deck = netlist.Deck

// ParseNetlist parses a netlist deck. Use Deck.Cell to obtain a Cell that
// plugs into Characterize and BruteForce.
func ParseNetlist(r io.Reader) (*Deck, error) { return netlist.Parse(r) }

// ParseNetlistString parses a deck held in a string.
func ParseNetlistString(s string) (*Deck, error) { return netlist.ParseString(s) }

// SeedResult re-exports the first-point search outcome.
type SeedResult = core.SeedResult

// MPNRResult re-exports the Moore-Penrose Newton solve outcome.
type MPNRResult = core.MPNRResult

// FindSeedCtx locates an initial (τs, τh) guess near the h = 0 curve by
// bracketing the setup time at a large pinned hold skew (paper Fig. 7). The
// context threads into the problem's transients so cancellation lands
// within one integration step.
func FindSeedCtx(ctx context.Context, p Problem, opts SeedOptions) (SeedResult, error) {
	return core.FindSeedCtx(ctx, p, opts)
}

// FindSeed is FindSeedCtx with context.Background().
func FindSeed(p Problem, opts SeedOptions) (SeedResult, error) {
	return core.FindSeedCtx(context.Background(), p, opts)
}

// SolveMPNRCtx runs the Moore-Penrose pseudo-inverse Newton-Raphson
// corrector from an initial guess, converging to the nearest point of the
// constant clock-to-Q curve (paper Section IIIC). Interrupted solves return
// a *CanceledError wrapping ErrCanceled.
func SolveMPNRCtx(ctx context.Context, p Problem, tauS, tauH float64, opts MPNROptions) (MPNRResult, error) {
	return core.SolveMPNRCtx(ctx, p, tauS, tauH, opts)
}

// SolveMPNR is SolveMPNRCtx with context.Background().
func SolveMPNR(p Problem, tauS, tauH float64, opts MPNROptions) (MPNRResult, error) {
	return core.SolveMPNRCtx(context.Background(), p, tauS, tauH, opts)
}

// TraceContourCtx runs Euler-Newton continuation from a seed guess (paper
// Section IIIE). An interrupted trace returns the partial contour accepted
// so far together with a *CanceledError. Most callers want the higher-level
// CharacterizeCtx, which also handles calibration and seeding.
func TraceContourCtx(ctx context.Context, p Problem, seedS, seedH float64, opts TraceOptions) (*Contour, error) {
	return core.TraceContourCtx(ctx, p, seedS, seedH, opts)
}

// TraceContour is TraceContourCtx with context.Background().
func TraceContour(p Problem, seedS, seedH float64, opts TraceOptions) (*Contour, error) {
	return core.TraceContourCtx(context.Background(), p, seedS, seedH, opts)
}

// Tangent returns the unit tangent induced by the Jacobian [gs, gh]
// (paper eq. (16)).
func Tangent(gs, gh float64) (ts, th float64, err error) {
	return core.Tangent(gs, gh)
}

// LibertyOptions configure the Liberty (.lib) fragment exporter.
type LibertyOptions = liberty.Options

// ExportLiberty writes a Liberty cell fragment for a characterization
// result: conventional per-axis setup/hold constraints plus the full
// interdependent pair table as a vendor-extension group.
func ExportLiberty(w io.Writer, cellName string, res *Result, opts LibertyOptions) error {
	return liberty.Export(w, cellName, res.Contour, res.Calibration, opts)
}

// ExportLibertySigma writes a Liberty cell fragment for the restrictive
// sigma corner of a variance-aware Monte-Carlo run: the inner band edge
// (nominal + mean + level·σ along each probe normal) stands in for the
// contour, so the emitted constraints and pair table guarantee the timing at
// the run's sigma level of process variation. Opts.Corner defaults to
// "<level>sigma".
func ExportLibertySigma(w io.Writer, cellName string, mc *MCResult, opts LibertyOptions) error {
	if mc == nil || mc.Sigma == nil || mc.Sigma.Inner == nil {
		return fmt.Errorf("latchchar: liberty sigma export needs a result with sigma contours")
	}
	if opts.Corner == "" {
		opts.Corner = fmt.Sprintf("%gsigma", mc.Sigma.Level)
	}
	return liberty.Export(w, cellName, mc.Sigma.Inner, mc.Nominal.Calibration, opts)
}

// Static-analysis (vet) surface. The analyzer driver in internal/vet runs a
// registry of independent checks — netlist topology, stimulus windows,
// component-value sanity and continuation configuration — over a built
// instance plus the characterization query parameters, returning structured
// diagnostics with stable check IDs.
type (
	// VetDiagnostic is one structured finding.
	VetDiagnostic = vet.Diagnostic
	// VetReport is the outcome of a vet run over one cell.
	VetReport = vet.Report
	// VetSpec carries the characterization query parameters the analyzers
	// validate against.
	VetSpec = vet.Spec
	// VetOptions select which checks run.
	VetOptions = vet.Options
)

// Vet severity levels.
const (
	VetError   = vet.Error
	VetWarning = vet.Warning
	VetInfo    = vet.Info
)

// Vet builds one instance of the cell and runs every registered analyzer
// over it and the given query parameters — the pre-flight to run on a
// freshly written netlist (or tuned configuration) before spending
// transient simulations on it.
func Vet(cell *Cell, spec VetSpec, opts VetOptions) (*VetReport, error) {
	inst, err := cell.Build()
	if err != nil {
		return nil, err
	}
	return vet.VetInstance(cell.Name, inst, spec, opts)
}

// ResampleContourCtx redistributes a traced contour into exactly n points
// evenly spaced in arc length, polishing each onto the curve with MPNR —
// the form library table generators want.
func ResampleContourCtx(ctx context.Context, p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	return core.ResampleContourCtx(ctx, p, c, n, opts)
}

// ResampleContour is ResampleContourCtx with context.Background().
func ResampleContour(p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	return core.ResampleContourCtx(context.Background(), p, c, n, opts)
}
